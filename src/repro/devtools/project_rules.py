"""Cross-file reprolint rules.

These rules correlate ASTs from several modules — the WAL record taxonomy
against the recovery replayer, the protocol frame table against server
dispatch and the remote driver.  Anchor files are found by path suffix
(``storage/wal.py``, ``txn/recovery.py``, ...), so the rules run on the real
tree and on miniature fixture trees alike; when an anchor file is absent
from the linted set the dependent checks are skipped.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .findings import Finding


class ProjectRule:
    """Base class: one named check over the whole set of linted files."""

    name: str = ""
    description: str = ""

    def check_project(self, files: Sequence) -> List[Finding]:
        """``files`` is a sequence of objects with .path / .tree / .source."""
        raise NotImplementedError

    def finding(self, path: str, line: int, message: str) -> Finding:
        return Finding(rule=self.name, path=path, line=line, col=1,
                       message=message)


def _find(files: Sequence, suffix: str):
    for entry in files:
        if entry.path.endswith(suffix):
            return entry
    return None


def _const_set_names(tree: ast.AST, target: str) -> Optional[Set[str]]:
    """Member names of ``target = frozenset({A.X, Y, ...})`` (or a set/tuple
    literal).  Returns None when the assignment does not exist."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        if not any(isinstance(t, ast.Name) and t.id == target
                   for t in node.targets):
            continue
        value = node.value
        if (isinstance(value, ast.Call) and isinstance(value.func, ast.Name)
                and value.func.id == "frozenset" and value.args):
            value = value.args[0]
        names: Set[str] = set()
        if isinstance(value, (ast.Set, ast.Tuple, ast.List)):
            for element in value.elts:
                if isinstance(element, ast.Attribute):
                    names.add(element.attr)
                elif isinstance(element, ast.Name):
                    names.add(element.id)
        return names
    return None


# --------------------------------------------------------------- wal-exhaustive


class WalExhaustiveRule(ProjectRule):
    """Every ``LogRecordType`` is replayed by recovery and scrub-classified.

    Adding a WAL record type is a three-part contract (see the checklist in
    ``docs/invariants.md``): define the constant in ``storage/wal.py``,
    classify it as scrub-exempt (``_SCRUB_EXEMPT``) or scrub-target
    (``_SCRUB_TARGETS``), and give it a replay arm in ``txn/recovery.py``
    (or list it in recovery's ``_REPLAY_IGNORED``).  Scrub targets must
    additionally be dispatched inside ``_redo`` — deleting a redo arm is a
    lint failure, not a crash-test surprise.
    """

    name = "wal-exhaustive"
    description = ("WAL record types missing recovery replay arms or scrub "
                   "classification")

    WAL_SUFFIX = "storage/wal.py"
    RECOVERY_SUFFIX = "txn/recovery.py"

    def check_project(self, files: Sequence) -> List[Finding]:
        wal = _find(files, self.WAL_SUFFIX)
        if wal is None:
            return []
        findings: List[Finding] = []
        members = self._record_types(wal.tree)
        if not members:
            return findings
        exempt = _const_set_names(wal.tree, "_SCRUB_EXEMPT")
        targets = _const_set_names(wal.tree, "_SCRUB_TARGETS")
        if exempt is None or targets is None:
            missing = "_SCRUB_EXEMPT" if exempt is None else "_SCRUB_TARGETS"
            findings.append(self.finding(
                wal.path, 1,
                f"storage/wal.py must define {missing} so every record type "
                "has an explicit scrub classification"))
            exempt = exempt or set()
            targets = targets or set()
        for member, line in members.items():
            classified_exempt = member in exempt
            classified_target = member in targets
            if not classified_exempt and not classified_target:
                findings.append(self.finding(
                    wal.path, line,
                    f"LogRecordType.{member} is not scrub-classified: add it "
                    "to _SCRUB_TARGETS (its images are rewritten when "
                    "degraded data is scrubbed) or _SCRUB_EXEMPT (carries no "
                    "row images)"))
            elif classified_exempt and classified_target:
                findings.append(self.finding(
                    wal.path, line,
                    f"LogRecordType.{member} is classified both scrub-exempt "
                    "and scrub-target; pick one"))
        recovery = _find(files, self.RECOVERY_SUFFIX)
        if recovery is None:
            return findings
        ignored = _const_set_names(recovery.tree, "_REPLAY_IGNORED") or set()
        refs = self._type_refs(recovery.tree,
                               exclude_assignment="_REPLAY_IGNORED")
        for member, line in members.items():
            if member in ignored:
                continue
            if member not in refs:
                findings.append(self.finding(
                    recovery.path, 1,
                    f"LogRecordType.{member} has no replay arm in "
                    "txn/recovery.py; dispatch it (redo/undo/analysis/"
                    "schedule replay) or list it in _REPLAY_IGNORED with a "
                    "reason"))
        redo_refs = self._refs_in_functions(recovery.tree, "_redo")
        for member in sorted(targets & set(members)):
            if member not in redo_refs:
                findings.append(self.finding(
                    recovery.path, 1,
                    f"scrub target LogRecordType.{member} is not dispatched "
                    "in _redo(); degradation/removal records must always be "
                    "redone or recovery resurrects scrubbed data"))
        return findings

    def _record_types(self, tree: ast.AST) -> Dict[str, int]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and node.name == "LogRecordType":
                members: Dict[str, int] = {}
                for stmt in node.body:
                    if isinstance(stmt, ast.Assign):
                        for target in stmt.targets:
                            if (isinstance(target, ast.Name)
                                    and target.id.isupper()):
                                members[target.id] = stmt.lineno
                return members
        return {}

    def _type_refs(self, tree: ast.AST,
                   exclude_assignment: Optional[str] = None) -> Set[str]:
        excluded: List[ast.AST] = []
        if exclude_assignment:
            for node in ast.walk(tree):
                if (isinstance(node, ast.Assign)
                        and any(isinstance(t, ast.Name)
                                and t.id == exclude_assignment
                                for t in node.targets)):
                    excluded.extend(ast.walk(node))
        excluded_ids = {id(node) for node in excluded}
        refs: Set[str] = set()
        for node in ast.walk(tree):
            if id(node) in excluded_ids:
                continue
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "LogRecordType"):
                refs.add(node.attr)
        return refs

    def _refs_in_functions(self, tree: ast.AST, fn_name: str) -> Set[str]:
        refs: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef) and node.name == fn_name:
                refs |= self._type_refs(node)
        return refs


# ---------------------------------------------------------- frame-tag-exhaustive


class FrameTagExhaustiveRule(ProjectRule):
    """Every protocol frame/value tag is handled on both ends of the wire.

    ``server/protocol.py`` is the single source of truth for frame types and
    value-codec tags.  A frame constant that the server never dispatches, or
    that the remote driver never sends/validates, is a silent protocol hole;
    a value tag encoded but not decoded (or vice versa) corrupts round
    trips.  The rule checks:

    * every frame constant appears in ``FRAME_NAMES``;
    * every frame constant is referenced by ``server/server.py`` (dispatch
      or reply) and by ``client/remote.py`` (request or reply validation);
    * the 1-byte tags written by ``_encode_into`` equal those read by
      ``_decode_at``.
    """

    name = "frame-tag-exhaustive"
    description = ("protocol frames or value tags not handled by both the "
                   "server dispatch and the remote driver")

    PROTOCOL_SUFFIX = "server/protocol.py"
    SERVER_SUFFIX = "server/server.py"
    CLIENT_SUFFIX = "client/remote.py"

    #: Module-level ALLCAPS integers in protocol.py that are not frame types.
    NON_FRAME_CONSTANTS = frozenset({"PROTOCOL_VERSION", "MAX_FRAME_BYTES"})

    def check_project(self, files: Sequence) -> List[Finding]:
        proto = _find(files, self.PROTOCOL_SUFFIX)
        if proto is None:
            return []
        findings: List[Finding] = []
        frames = self._frame_constants(proto.tree)
        named = self._frame_names_keys(proto.tree)
        for frame, line in frames.items():
            if frame not in named:
                findings.append(self.finding(
                    proto.path, line,
                    f"frame {frame} is missing from FRAME_NAMES (debugging "
                    "output would show a raw byte)"))
        server = _find(files, self.SERVER_SUFFIX)
        if server is not None:
            refs = self._protocol_refs(server.tree)
            for frame, line in frames.items():
                if frame not in refs:
                    findings.append(self.finding(
                        server.path, 1,
                        f"frame {frame} is never referenced by the server — "
                        "add a dispatch arm (or reply site) for it"))
        client = _find(files, self.CLIENT_SUFFIX)
        if client is not None:
            refs = self._protocol_refs(client.tree)
            for frame, line in frames.items():
                if frame not in refs:
                    findings.append(self.finding(
                        client.path, 1,
                        f"frame {frame} is never referenced by the remote "
                        "driver — requests must be sent and reply types "
                        "validated against the protocol constants"))
        encode_tags = self._byte_tags(proto.tree, "_encode_into")
        decode_tags = self._byte_tags(proto.tree, "_decode_at")
        for tag in sorted(encode_tags - decode_tags):
            findings.append(self.finding(
                proto.path, 1,
                f"value tag {tag!r} is written by _encode_into but never "
                "read by _decode_at"))
        for tag in sorted(decode_tags - encode_tags):
            findings.append(self.finding(
                proto.path, 1,
                f"value tag {tag!r} is read by _decode_at but never written "
                "by _encode_into"))
        return findings

    def _frame_constants(self, tree: ast.AST) -> Dict[str, int]:
        frames: Dict[str, int] = {}
        if not isinstance(tree, ast.Module):
            return frames
        for node in tree.body:
            if not isinstance(node, ast.Assign):
                continue
            if not (isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, int)
                    and not isinstance(node.value.value, bool)):
                continue
            for target in node.targets:
                if (isinstance(target, ast.Name) and target.id.isupper()
                        and target.id not in self.NON_FRAME_CONSTANTS):
                    frames[target.id] = node.lineno
        return frames

    def _frame_names_keys(self, tree: ast.AST) -> Set[str]:
        for node in ast.walk(tree):
            if (isinstance(node, ast.Assign)
                    and any(isinstance(t, ast.Name) and t.id == "FRAME_NAMES"
                            for t in node.targets)
                    and isinstance(node.value, ast.Dict)):
                return {key.id for key in node.value.keys
                        if isinstance(key, ast.Name)}
        return set()

    def _protocol_refs(self, tree: ast.AST) -> Set[str]:
        """Names referenced as ``protocol.X`` or imported-from-protocol."""
        refs: Set[str] = set()
        for node in ast.walk(tree):
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "protocol"):
                refs.add(node.attr)
            elif (isinstance(node, ast.ImportFrom) and node.module
                    and node.module.endswith("protocol")):
                refs |= {alias.name for alias in node.names}
        return refs

    def _byte_tags(self, tree: ast.AST, fn_name: str) -> Set[str]:
        tags: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef) and node.name == fn_name:
                for sub in ast.walk(node):
                    if (isinstance(sub, ast.Constant)
                            and isinstance(sub.value, bytes)
                            and len(sub.value) == 1):
                        tags.add(sub.value.decode("latin-1"))
        return tags


PROJECT_RULES = (
    WalExhaustiveRule,
    FrameTagExhaustiveRule,
)

__all__ = ["ProjectRule", "WalExhaustiveRule", "FrameTagExhaustiveRule",
           "PROJECT_RULES"]
