"""Runtime invariant checks: lock-order tracking and engine-thread confinement.

The static half of devtools (``repro.devtools.lint``) proves properties of
the *source*; this module checks the two invariants that only exist at
runtime:

* **Lock-order discipline.**  Every :class:`TrackedLock` acquisition is
  recorded into a per-owner held list and a global *order graph* (edges
  ``held -> newly acquired``).  A cycle in that graph means two code paths
  acquire the same locks in opposite orders — a latent deadlock even if the
  test run never actually deadlocked.  Cycles are reported at release time,
  ranked locks (names listed in :data:`LOCK_HIERARCHY`) are additionally
  checked at acquire time.  The same tracker machinery observes the engine's
  2PL :class:`~repro.txn.locks.LockManager` in *observe-only* mode: 2PL
  inversions are normal (the engine resolves them with its own deadlock
  detector), so they are recorded in :data:`observed_inversions` for
  diagnostics instead of raising.
* **Engine-thread confinement.**  The serving layer promises that every
  engine entry point runs on the server's single engine-executor thread.
  :func:`register_engine_thread` pins an engine to the executor thread;
  :func:`assert_engine_thread` (called from the engine's entry points)
  raises :class:`InvariantViolation` when any other thread calls in while
  the engine is being served.

Everything here is **off by default**: set ``REPRO_DEBUG_INVARIANTS=1`` in
the environment (or call :func:`enable` from a test) to arm the checks.
When disabled the hooks are a single attribute test — cheap enough to leave
compiled into the hot paths.

See ``docs/invariants.md`` for the documented lock hierarchy and the
confinement contract.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

#: The documented partial order of the process-level (``threading``) locks.
#: A :class:`TrackedLock` whose name appears here has the rank of its index;
#: acquiring a lower-ranked lock while holding a higher-ranked one raises.
#: Unranked names participate in order-graph cycle detection only.
#: Keep this tuple in sync with docs/invariants.md.
LOCK_HIERARCHY: Tuple[str, ...] = (
    "server.sessions",
    "faults.plan",
)


class InvariantViolation(AssertionError):
    """A runtime invariant was broken (only raised when checks are enabled)."""


_enabled: bool = os.environ.get("REPRO_DEBUG_INVARIANTS", "") not in ("", "0")

#: Violations that raised (lock-order cycles, rank inversions, confinement
#: breaches).  Appended before raising so tests can inspect what fired.
violations: List[str] = []

#: Observe-only findings from the 2PL lock manager: transactions that
#: acquired resources in conflicting orders.  Never raises — the engine's
#: own deadlock detector is the enforcement mechanism there.
observed_inversions: List[str] = []


def enabled() -> bool:
    return _enabled


def enable() -> None:
    """Arm the runtime checks (tests; equivalent to REPRO_DEBUG_INVARIANTS=1)."""
    global _enabled
    _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


def reset() -> None:
    """Clear all recorded state (between tests)."""
    del violations[:]
    del observed_inversions[:]
    _thread_tracker.clear()
    _txn_tracker.clear()
    _engine_threads.clear()


def _violation(message: str) -> None:
    violations.append(message)
    raise InvariantViolation(message)


# --------------------------------------------------------------- order graph


class LockOrderTracker:
    """Per-owner acquisition sequences feeding a global lock-order graph.

    ``owner`` is a thread ident for :class:`TrackedLock` and a transaction
    id for the observed 2PL domain — the two domains use separate tracker
    instances so threading locks and table/row resources can never form
    false mixed cycles.
    """

    def __init__(self, domain: str) -> None:
        self.domain = domain
        #: edge ``a -> b``: some owner acquired (or attempted) b while holding a
        self._edges: Dict[str, Set[str]] = {}
        self._held: Dict[int, List[str]] = {}
        self._seen_cycles: Set[Tuple[str, ...]] = set()
        # Internal mutex guarding the graph itself; deliberately a raw RLock —
        # the tracker cannot track the lock that serializes the tracker.
        self._mutex = threading.RLock()  # reprolint: disable=lock-discipline

    def on_acquire(self, owner: int, name: str) -> None:
        with self._mutex:
            held = self._held.setdefault(owner, [])
            if name in held:            # re-entrant / retried acquisition
                return
            for prior in held:
                self._edges.setdefault(prior, set()).add(name)
            held.append(name)

    def on_release(self, owner: int, name: str) -> Optional[List[str]]:
        """Drop ``name`` from the owner's held list; report any graph cycle."""
        with self._mutex:
            held = self._held.get(owner)
            if held and name in held:
                held.remove(name)
            return self._new_cycle()

    def on_release_all(self, owner: int) -> Optional[List[str]]:
        with self._mutex:
            self._held.pop(owner, None)
            return self._new_cycle()

    def held_by(self, owner: int) -> List[str]:
        with self._mutex:
            return list(self._held.get(owner, ()))

    def clear(self) -> None:
        with self._mutex:
            self._edges.clear()
            self._held.clear()
            self._seen_cycles.clear()

    # -- cycle detection ---------------------------------------------------

    def _new_cycle(self) -> Optional[List[str]]:
        """First not-yet-reported cycle in the order graph, if any."""
        cycle = self._find_cycle()
        if cycle is None:
            return None
        key = _canonical_cycle(cycle)
        if key in self._seen_cycles:
            return None
        self._seen_cycles.add(key)
        return cycle

    def _find_cycle(self) -> Optional[List[str]]:
        visiting: Set[str] = set()
        done: Set[str] = set()
        path: List[str] = []

        def visit(node: str) -> Optional[List[str]]:
            if node in visiting:
                return path[path.index(node):] + [node]
            if node in done:
                return None
            visiting.add(node)
            path.append(node)
            for succ in self._edges.get(node, ()):
                found = visit(succ)
                if found is not None:
                    return found
            path.pop()
            visiting.discard(node)
            done.add(node)
            return None

        for start in list(self._edges):
            found = visit(start)
            if found is not None:
                return found
        return None


def _canonical_cycle(cycle: Sequence[str]) -> Tuple[str, ...]:
    """Rotation-independent key for a cycle ``[a, b, ..., a]``."""
    ring = list(cycle[:-1])
    if not ring:
        return tuple(cycle)
    pivot = ring.index(min(ring))
    return tuple(ring[pivot:] + ring[:pivot])


_thread_tracker = LockOrderTracker("thread-locks")
_txn_tracker = LockOrderTracker("txn-resources")


# --------------------------------------------------------------- TrackedLock


def _rank(name: str) -> Optional[int]:
    try:
        return LOCK_HIERARCHY.index(name)
    except ValueError:
        return None


class TrackedLock:
    """A named re-entrant lock whose acquisitions feed the order tracker.

    Use as a context manager only (``with lock:``) — the lint rule
    *lock-discipline* rejects bare ``.acquire()`` calls precisely so every
    acquisition goes through ``__enter__`` and gets tracked.  When the
    runtime checks are disabled this is an ordinary RLock behind one
    ``if``.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.RLock()  # reprolint: disable=lock-discipline

    def __enter__(self) -> "TrackedLock":
        if _enabled:
            self._check_rank()
            _thread_tracker.on_acquire(threading.get_ident(), self.name)
        self._lock.acquire()  # reprolint: disable=lock-discipline
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self._lock.release()  # reprolint: disable=lock-discipline
        if _enabled:
            cycle = _thread_tracker.on_release(threading.get_ident(), self.name)
            if cycle is not None:
                _violation(
                    "lock-order inversion: cycle "
                    + " -> ".join(cycle)
                    + " in the thread-lock order graph (two code paths "
                    "acquire these locks in opposite orders)")

    def _check_rank(self) -> None:
        my_rank = _rank(self.name)
        if my_rank is None:
            return
        for held in _thread_tracker.held_by(threading.get_ident()):
            held_rank = _rank(held)
            if held_rank is not None and held_rank > my_rank:
                _violation(
                    f"lock hierarchy violation: acquiring {self.name!r} "
                    f"(rank {my_rank}) while holding {held!r} "
                    f"(rank {held_rank}); see LOCK_HIERARCHY in "
                    "repro/devtools/invariants.py")

    def __repr__(self) -> str:
        return f"TrackedLock({self.name!r})"


# ----------------------------------------------- observed 2PL lock ordering


def observe_txn_lock(txn_id: int, resource: Any) -> None:
    """Record a 2PL acquisition *attempt* (called by ``LockManager.acquire``).

    Attempts count even when the manager answers "wait": the inversion is in
    the order code *asks* for resources, not in which requests were granted.
    """
    if not _enabled:
        return
    _txn_tracker.on_acquire(txn_id, _resource_key(resource))


def observe_txn_release(txn_id: int) -> None:
    """Record a strict-2PL release-all (commit/abort) and log new cycles."""
    if not _enabled:
        return
    cycle = _txn_tracker.on_release_all(txn_id)
    if cycle is not None:
        observed_inversions.append(
            "2PL acquisition-order inversion: cycle "
            + " -> ".join(cycle)
            + " (transactions request these resources in opposite orders; "
            "resolved at runtime by deadlock detection)")


def _resource_key(resource: Any) -> str:
    if isinstance(resource, tuple):
        return "/".join(str(part) for part in resource)
    return str(resource)


# -------------------------------------------------------- thread confinement

#: ``id(engine) -> thread ident`` for engines currently pinned to a serving
#: executor.  Registered by ``InstantDBServer.start()`` on the executor
#: thread itself, removed by ``stop()``.
_engine_threads: Dict[int, int] = {}


def register_engine_thread(engine: Any, ident: Optional[int] = None) -> None:
    """Pin ``engine`` to a thread (defaults to the calling thread)."""
    _engine_threads[id(engine)] = (
        ident if ident is not None else threading.get_ident())


def unregister_engine_thread(engine: Any) -> None:
    _engine_threads.pop(id(engine), None)


def assert_engine_thread(engine: Any) -> None:
    """Raise if a pinned engine is entered from a foreign thread.

    A no-op unless the checks are enabled *and* the engine is currently
    registered (i.e. being served); unserved engines stay freely usable
    from any single thread.
    """
    if not _enabled or not _engine_threads:
        return
    expected = _engine_threads.get(id(engine))
    if expected is None:
        return
    actual = threading.get_ident()
    if actual != expected:
        thread = threading.current_thread()
        _violation(
            f"engine entered off its executor thread: thread "
            f"{thread.name!r} (ident {actual}) called into an engine pinned "
            f"to thread ident {expected}; route the call through the "
            "server's engine executor (run_on_engine / ServerThread.submit)")


__all__ = [
    "InvariantViolation", "LOCK_HIERARCHY", "LockOrderTracker", "TrackedLock",
    "enable", "disable", "enabled", "reset", "violations",
    "observed_inversions", "observe_txn_lock", "observe_txn_release",
    "register_engine_thread", "unregister_engine_thread",
    "assert_engine_thread",
]
