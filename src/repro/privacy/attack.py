"""Attacker models: snapshot attacks, continuous attacks and detectability.

The paper's second claimed benefit: "to be effective, an attack targeting a
database running a data degradation process must be repeated with a frequency
smaller than the duration of the shortest degradation step.  Such continuous
attacks are easily detectable."  This module provides the simulation the B2
benchmark uses to quantify both halves of that claim:

* a **snapshot attacker** compromises the server at one or more instants and
  reads everything currently stored — the accurate data captured is whatever
  is still in its accurate state at those instants;
* a **continuous attacker** repeats snapshots with a fixed period ``p``; the
  fraction of tuples it captures accurately grows as ``p`` shrinks below the
  duration of the first (shortest) degradation step;
* a simple **intrusion-detection model** assigns each snapshot an independent
  detection probability, so repeating the attack often enough to beat
  degradation drives the cumulative detection probability towards one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass
class AttackOutcome:
    """Result of simulating one attacker against one population of tuples."""

    total_tuples: int
    captured_accurate: int
    snapshots_taken: int
    detection_probability: float

    @property
    def capture_fraction(self) -> float:
        return self.captured_accurate / self.total_tuples if self.total_tuples else 0.0


def tuples_accurate_at(insert_times: Sequence[float], accurate_lifetime: float,
                       when: float) -> List[int]:
    """Indices of tuples still accurate at ``when``.

    A tuple inserted at ``t`` is accurate during ``[t, t + accurate_lifetime)``.
    """
    return [
        index for index, inserted in enumerate(insert_times)
        if inserted <= when < inserted + accurate_lifetime
    ]


def simulate_snapshot_attack(insert_times: Sequence[float], accurate_lifetime: float,
                             attack_times: Sequence[float],
                             detection_per_snapshot: float = 0.0) -> AttackOutcome:
    """Capture everything accurate at each attack time; union over attacks."""
    captured = set()
    for when in attack_times:
        captured.update(tuples_accurate_at(insert_times, accurate_lifetime, when))
    n = len(attack_times)
    detection = 1.0 - (1.0 - detection_per_snapshot) ** n if n else 0.0
    return AttackOutcome(
        total_tuples=len(insert_times),
        captured_accurate=len(captured),
        snapshots_taken=n,
        detection_probability=detection,
    )


def simulate_periodic_attack(insert_times: Sequence[float], accurate_lifetime: float,
                             period: float, horizon: float,
                             detection_per_snapshot: float = 0.0,
                             first_attack: float = 0.0) -> AttackOutcome:
    """Continuous attacker snapshotting every ``period`` seconds until ``horizon``."""
    attack_times = []
    when = first_attack
    while when <= horizon:
        attack_times.append(when)
        when += period
    return simulate_snapshot_attack(insert_times, accurate_lifetime, attack_times,
                                    detection_per_snapshot)


def capture_fraction_analytic(accurate_lifetime: float, period: float) -> float:
    """Expected fraction of tuples captured accurately by a periodic attacker.

    With uniformly random insertion phases, a tuple accurate for ``L`` seconds
    is seen by an attacker sampling every ``p`` seconds with probability
    ``min(1, L / p)``.
    """
    if period <= 0:
        return 1.0
    return min(1.0, accurate_lifetime / period)


def snapshots_needed(horizon: float, period: float) -> int:
    """Number of snapshots a periodic attacker takes over ``horizon``."""
    if period <= 0:
        return 0
    return int(math.floor(horizon / period)) + 1


def cumulative_detection(detection_per_snapshot: float, snapshots: int) -> float:
    """Probability that at least one of ``snapshots`` independent attacks is detected."""
    detection_per_snapshot = min(max(detection_per_snapshot, 0.0), 1.0)
    return 1.0 - (1.0 - detection_per_snapshot) ** snapshots


@dataclass
class AttackSweepPoint:
    """One point of the B2 sweep: attack period vs capture and detection."""

    period: float
    capture_fraction: float
    capture_fraction_analytic: float
    snapshots: int
    detection_probability: float


def sweep_attack_periods(insert_times: Sequence[float], accurate_lifetime: float,
                         periods: Iterable[float], horizon: float,
                         detection_per_snapshot: float = 0.01) -> List[AttackSweepPoint]:
    """Run the periodic attacker for each period and report capture vs detection."""
    points = []
    for period in periods:
        outcome = simulate_periodic_attack(
            insert_times, accurate_lifetime, period, horizon,
            detection_per_snapshot=detection_per_snapshot,
        )
        points.append(AttackSweepPoint(
            period=period,
            capture_fraction=outcome.capture_fraction,
            capture_fraction_analytic=capture_fraction_analytic(accurate_lifetime, period),
            snapshots=outcome.snapshots_taken,
            detection_probability=outcome.detection_probability,
        ))
    return points


__all__ = [
    "AttackOutcome",
    "AttackSweepPoint",
    "tuples_accurate_at",
    "simulate_snapshot_attack",
    "simulate_periodic_attack",
    "capture_fraction_analytic",
    "snapshots_needed",
    "cumulative_detection",
    "sweep_attack_periods",
]
