"""Forensic scanner: does any accurate value survive anywhere in the engine?

The paper cites Stahlberg et al. (SIGMOD'07): conventional DBMSs retain deleted
data in the data space, the indexes and the logs.  The scanner below is the
reproduction's verification tool for the non-recoverability requirement — it
greps every raw byte the engine holds (heap pages including free space, WAL
images, index keys) for the plaintext of values that should have been degraded
away, and reports the ones it finds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence


@dataclass
class ForensicFinding:
    """One residual accurate value discovered in a raw image."""

    value: Any
    channel: str          # "heap", "wal", "index", "engine"
    offset: int


@dataclass
class ForensicReport:
    """Outcome of scanning one or more channels for a set of sensitive values."""

    values_searched: int
    findings: List[ForensicFinding] = field(default_factory=list)

    @property
    def residual_values(self) -> List[Any]:
        seen = []
        for finding in self.findings:
            if finding.value not in seen:
                seen.append(finding.value)
        return seen

    @property
    def clean(self) -> bool:
        return not self.findings

    def findings_in(self, channel: str) -> List[ForensicFinding]:
        return [finding for finding in self.findings if finding.channel == channel]

    def summary(self) -> str:
        if self.clean:
            return f"clean: none of the {self.values_searched} sensitive values found"
        channels = sorted({finding.channel for finding in self.findings})
        return (f"{len(self.residual_values)}/{self.values_searched} sensitive values "
                f"still recoverable (channels: {', '.join(channels)})")


def _patterns_for(value: Any) -> List[bytes]:
    """Byte patterns whose presence implies the plaintext value is recoverable."""
    patterns = []
    if isinstance(value, str):
        patterns.append(value.encode("utf-8"))
    elif isinstance(value, bool):
        pass  # one-byte booleans carry no identifiable plaintext
    elif isinstance(value, int):
        import struct
        patterns.append(struct.pack("<q", value))
    elif isinstance(value, float):
        import struct
        patterns.append(struct.pack("<d", value))
    elif isinstance(value, (bytes, bytearray)):
        patterns.append(bytes(value))
    else:
        patterns.append(repr(value).encode("utf-8"))
    return [pattern for pattern in patterns if pattern]


def scan_image(image: bytes, values: Sequence[Any], channel: str = "image") -> ForensicReport:
    """Scan one raw byte image for the plaintext of ``values``."""
    report = ForensicReport(values_searched=len(values))
    for value in values:
        for pattern in _patterns_for(value):
            offset = image.find(pattern)
            while offset != -1:
                report.findings.append(ForensicFinding(value=value, channel=channel,
                                                       offset=offset))
                offset = image.find(pattern, offset + 1)
    return report


def scan_channels(channels: Dict[str, bytes], values: Sequence[Any]) -> ForensicReport:
    """Scan several named channels and merge the findings."""
    report = ForensicReport(values_searched=len(values))
    for channel, image in channels.items():
        partial = scan_image(image, values, channel=channel)
        report.findings.extend(partial.findings)
    return report


def scan_engine(db, values: Sequence[Any], table: Optional[str] = None) -> ForensicReport:
    """Scan a live :class:`~repro.engine.InstantDB` for residual accurate values.

    When ``table`` is given only that table's heap/WAL plus its indexes are
    scanned; otherwise the engine-wide forensic image is used.
    """
    channels: Dict[str, bytes] = {}
    if table is None:
        channels["engine"] = db.forensic_image()
    else:
        store = db.table_store(table)
        channels["heap"] = store.heap.raw_image()
        # The WAL channel redacts CATALOG documents: they enumerate the
        # domain vocabulary (schema, fixed at DDL time), and flagging the
        # ontology would drown real tuple-retention leaks in false positives.
        channels["wal"] = store.wal.forensic_image()
        info = db.catalog.table(table)
        for index_info in info.indexes.values():
            channels[f"index:{index_info.name}"] = index_info.index.raw_image()
    return scan_channels(channels, values)


__all__ = ["ForensicFinding", "ForensicReport", "scan_image", "scan_channels", "scan_engine"]
