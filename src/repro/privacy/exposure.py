"""Exposure metrics: how much accurate personal data is at risk, and for how long.

The paper's first claimed benefit is that "the amount of accurate personal
information exposed to disclosure ... is always less than with a traditional
data retention principle".  This module quantifies that claim with two
complementary metrics, both used by the B1 benchmark:

* **snapshot exposure** — at an attack instant ``t``, how many tuples are
  visible at (or below) a given accuracy level;
* **exposure volume** ("accurate tuple-seconds") — the integral over time of
  the number of tuples stored at (or below) a given accuracy level, i.e. the
  area an attacker could harvest by watching the store continuously.

Both empirical versions (inspecting a live :class:`~repro.engine.InstantDB`)
and analytic versions (closed form from arrival rate and policy delays) are
provided so benchmarks can cross check one against the other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..core.errors import ConfigurationError
from ..core.lcp import NEVER, AttributeLCP


@dataclass
class ExposureSnapshot:
    """Exposure of one store at one instant."""

    time: float
    total_rows: int
    rows_at_or_below_level: Dict[int, int]

    def exposed(self, level: int = 0) -> int:
        """Rows observable at accuracy ``level`` or better."""
        return self.rows_at_or_below_level.get(level, 0)

    def exposed_fraction(self, level: int = 0) -> float:
        if self.total_rows == 0:
            return 0.0
        return self.exposed(level) / self.total_rows


def snapshot_from_histogram(time: float, histogram: Dict[int, int]) -> ExposureSnapshot:
    """Build a snapshot from a per-level row histogram (cumulative from level 0)."""
    total = sum(histogram.values())
    cumulative: Dict[int, int] = {}
    running = 0
    for level in sorted(histogram):
        running += histogram[level]
        cumulative[level] = running
    # Fill gaps so every level up to the max has a cumulative count.
    filled: Dict[int, int] = {}
    running = 0
    max_level = max(histogram) if histogram else 0
    for level in range(max_level + 1):
        running += histogram.get(level, 0)
        filled[level] = running
    return ExposureSnapshot(time=time, total_rows=total, rows_at_or_below_level=filled)


def engine_snapshot(db, table: str, column: str, time: Optional[float] = None) -> ExposureSnapshot:
    """Snapshot exposure of ``table.column`` in a live :class:`InstantDB`."""
    when = db.now() if time is None else time
    histogram = db.level_histogram(table, column)
    return snapshot_from_histogram(when, histogram)


@dataclass
class ExposureTimeline:
    """Sequence of snapshots plus integrated exposure volume."""

    snapshots: List[ExposureSnapshot]

    def volume(self, level: int = 0) -> float:
        """Integral of exposed rows over time (trapezoid rule), in row-seconds."""
        if len(self.snapshots) < 2:
            return 0.0
        total = 0.0
        for previous, current in zip(self.snapshots, self.snapshots[1:]):
            dt = current.time - previous.time
            total += dt * (previous.exposed(level) + current.exposed(level)) / 2.0
        return total

    def peak(self, level: int = 0) -> int:
        return max((snap.exposed(level) for snap in self.snapshots), default=0)

    def times(self) -> List[float]:
        return [snap.time for snap in self.snapshots]


# -- analytic model -------------------------------------------------------------------


def accurate_lifetime_of_policy(policy: AttributeLCP) -> float:
    """Time a value spends at accuracy level 0 under ``policy`` (its first delay)."""
    first = policy.transitions[0]
    if not first.timed:
        return NEVER
    return float(first.delay)


def steady_state_exposure(arrival_rate: float, accurate_lifetime: float) -> float:
    """Little's-law estimate of rows accurate at any instant.

    ``arrival_rate`` is tuples per second; the expected number of tuples
    simultaneously in the accurate state is ``rate * lifetime``.
    """
    if arrival_rate < 0:
        raise ConfigurationError("arrival rate cannot be negative")
    if accurate_lifetime == NEVER:
        return float("inf")
    return arrival_rate * accurate_lifetime


def exposure_volume_analytic(num_tuples: int, accurate_lifetime: float) -> float:
    """Total accurate tuple-seconds accumulated by ``num_tuples`` insertions."""
    if accurate_lifetime == NEVER:
        return float("inf")
    return num_tuples * accurate_lifetime


def retention_vs_degradation_ratio(retention_limit: float,
                                   policy: AttributeLCP) -> float:
    """How much longer a tuple stays accurate under limited retention than under
    the degradation policy (the headline ratio of benchmark B1)."""
    lifetime = accurate_lifetime_of_policy(policy)
    if lifetime == 0:
        return float("inf")
    if lifetime == NEVER:
        return 0.0
    return retention_limit / lifetime


def level_exposure_profile(policy: AttributeLCP) -> List[Dict[str, float]]:
    """Per accuracy level: entry offset and residence time under ``policy``.

    Used to report the full degradation staircase, not only level 0.
    """
    entries = policy.entry_times()
    profile = []
    for index, level in enumerate(policy.states):
        entered = entries[index]
        left = entries[index + 1] if index + 1 < len(entries) else NEVER
        residence = NEVER if NEVER in (entered, left) else left - entered
        profile.append({
            "state": index,
            "level": level,
            "level_name": policy.scheme.level_name(level),
            "entered_at": entered,
            "residence": residence,
        })
    return profile


__all__ = [
    "ExposureSnapshot",
    "ExposureTimeline",
    "snapshot_from_histogram",
    "engine_snapshot",
    "accurate_lifetime_of_policy",
    "steady_state_exposure",
    "exposure_volume_analytic",
    "retention_vs_degradation_ratio",
    "level_exposure_profile",
]
