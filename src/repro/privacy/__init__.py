"""Privacy analysis: exposure metrics, attacker models, forensic scanning."""

from .attack import (
    AttackOutcome,
    AttackSweepPoint,
    capture_fraction_analytic,
    cumulative_detection,
    simulate_periodic_attack,
    simulate_snapshot_attack,
    snapshots_needed,
    sweep_attack_periods,
    tuples_accurate_at,
)
from .exposure import (
    ExposureSnapshot,
    ExposureTimeline,
    accurate_lifetime_of_policy,
    engine_snapshot,
    exposure_volume_analytic,
    level_exposure_profile,
    retention_vs_degradation_ratio,
    snapshot_from_histogram,
    steady_state_exposure,
)
from .forensic import ForensicFinding, ForensicReport, scan_channels, scan_engine, scan_image

__all__ = [
    "AttackOutcome", "AttackSweepPoint", "capture_fraction_analytic",
    "cumulative_detection", "simulate_periodic_attack", "simulate_snapshot_attack",
    "snapshots_needed", "sweep_attack_periods", "tuples_accurate_at",
    "ExposureSnapshot", "ExposureTimeline", "accurate_lifetime_of_policy",
    "engine_snapshot", "exposure_volume_analytic", "level_exposure_profile",
    "retention_vs_degradation_ratio", "snapshot_from_histogram", "steady_state_exposure",
    "ForensicFinding", "ForensicReport", "scan_channels", "scan_engine", "scan_image",
]
