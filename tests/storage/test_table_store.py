"""Tests for the degradation-aware table store (both non-recoverability strategies)."""

import pytest

from repro.core.domains import build_location_tree, build_salary_ranges
from repro.core.errors import PolicyError, RecordNotFoundError, StorageError
from repro.core.schema import Column, TableSchema
from repro.core.values import NULL, SUPPRESSED
from repro.storage.buffer import BufferPool
from repro.storage.degradable_store import TableStore
from repro.storage.pager import MemoryPager
from repro.storage.wal import LogRecordType, WriteAheadLog

LOCATION = build_location_tree()
SALARY = build_salary_ranges()


def make_schema() -> TableSchema:
    return TableSchema("person", [
        Column("id", "INT", primary_key=True),
        Column("name", "TEXT"),
        Column("location", "TEXT", degradable=True, domain="location"),
        Column("salary", "INT", degradable=True, domain="salary"),
    ])


def make_store(strategy: str = "rewrite") -> TableStore:
    pool = BufferPool(MemoryPager(), capacity=16)
    return TableStore(make_schema(), pool, WriteAheadLog(), strategy=strategy)


ROW = {"id": 1, "name": "alice", "location": "1 Main Street, Paris", "salary": 2500}


@pytest.fixture(params=["rewrite", "crypto"])
def store(request) -> TableStore:
    return make_store(request.param)


class TestBasicOperations:
    def test_insert_and_read(self, store):
        row_key = store.insert(ROW, now=0.0)
        row = store.read(row_key)
        assert row.values["name"] == "alice"
        assert row.values["location"] == "1 Main Street, Paris"
        assert row.levels == {"location": 0, "salary": 0}
        assert row.inserted_at == 0.0
        assert store.row_count == 1

    def test_unknown_strategy_rejected(self):
        pool = BufferPool(MemoryPager(), capacity=4)
        with pytest.raises(StorageError):
            TableStore(make_schema(), pool, WriteAheadLog(), strategy="wishful")

    def test_read_missing_row_raises(self, store):
        with pytest.raises(RecordNotFoundError):
            store.read(99)

    def test_scan_and_fetch(self, store):
        keys = [store.insert({**ROW, "id": i}, now=float(i)) for i in range(1, 6)]
        assert {row.row_key for row in store.scan()} == set(keys)
        fetched = list(store.fetch(iter(keys[:2])))
        assert [row.row_key for row in fetched] == keys[:2]

    def test_insert_logs_after_image(self, store):
        store.insert(ROW, now=0.0)
        types = [record.record_type for record in store.wal]
        assert LogRecordType.INSERT in types

    def test_update_stable_column(self, store):
        row_key = store.insert(ROW, now=0.0)
        updated = store.update_stable(row_key, "name", "alice-renamed", now=1.0)
        assert updated.values["name"] == "alice-renamed"
        assert store.read(row_key).values["name"] == "alice-renamed"

    def test_update_degradable_column_rejected(self, store):
        row_key = store.insert(ROW, now=0.0)
        with pytest.raises(PolicyError):
            store.update_stable(row_key, "location", "elsewhere", now=1.0)

    def test_delete(self, store):
        row_key = store.insert(ROW, now=0.0)
        store.delete(row_key, now=1.0)
        assert not store.exists(row_key)
        assert store.row_count == 0


class TestDegradation:
    def test_degrade_one_step(self, store):
        row_key = store.insert(ROW, now=0.0)
        row = store.degrade(row_key, "location", LOCATION, to_level=1, now=3600.0)
        assert row.values["location"] == "Paris"
        assert row.levels["location"] == 1
        # Reading again gives the degraded value.
        assert store.read(row_key).values["location"] == "Paris"

    def test_degrade_multiple_levels_at_once(self, store):
        row_key = store.insert(ROW, now=0.0)
        row = store.degrade(row_key, "location", LOCATION, to_level=3, now=10.0)
        assert row.values["location"] == "France"

    def test_degrade_to_same_level_is_noop(self, store):
        row_key = store.insert(ROW, now=0.0)
        row = store.degrade(row_key, "location", LOCATION, to_level=0, now=1.0)
        assert row.values["location"] == "1 Main Street, Paris"

    def test_degrade_backwards_rejected(self, store):
        row_key = store.insert(ROW, now=0.0)
        store.degrade(row_key, "location", LOCATION, to_level=2, now=1.0)
        with pytest.raises(PolicyError):
            store.degrade(row_key, "location", LOCATION, to_level=1, now=2.0)

    def test_degrade_stable_column_rejected(self, store):
        row_key = store.insert(ROW, now=0.0)
        with pytest.raises(PolicyError):
            store.degrade(row_key, "name", LOCATION, to_level=1, now=1.0)

    def test_degrade_to_suppressed(self, store):
        row_key = store.insert(ROW, now=0.0)
        row = store.degrade(row_key, "location", LOCATION, to_level=4, now=1.0)
        assert row.values["location"] is SUPPRESSED

    def test_degrade_salary_to_range(self, store):
        row_key = store.insert(ROW, now=0.0)
        row = store.degrade(row_key, "salary", SALARY, to_level=2, now=1.0)
        assert row.values["salary"] == "2000-3000"

    def test_degrade_logs_no_accurate_image(self, store):
        row_key = store.insert(ROW, now=0.0)
        store.degrade(row_key, "location", LOCATION, to_level=1, now=1.0)
        degrade_records = [r for r in store.wal if r.record_type is LogRecordType.DEGRADE]
        assert len(degrade_records) == 1
        assert degrade_records[0].before is None

    def test_independent_columns(self, store):
        row_key = store.insert(ROW, now=0.0)
        store.degrade(row_key, "location", LOCATION, to_level=1, now=1.0)
        row = store.read(row_key)
        assert row.levels == {"location": 1, "salary": 0}
        assert row.values["salary"] == 2500


class TestBulkDegradation:
    def test_degrade_many_matches_per_step_results(self, store):
        keys = [store.insert({**ROW, "id": i}, now=0.0) for i in range(1, 5)]
        outcomes = store.degrade_many(
            [(row_key, "location", LOCATION, 1) for row_key in keys], now=3600.0)
        assert [o.row_key for o in outcomes] == keys
        assert all(o.changed and o.to_level == 1 for o in outcomes)
        assert all(o.new_value == "Paris" for o in outcomes)
        for row_key in keys:
            row = store.read(row_key)
            assert row.values["location"] == "Paris"
            assert row.levels["location"] == 1

    def test_degrade_many_multiple_columns_one_rewrite(self, store):
        row_key = store.insert(ROW, now=0.0)
        relocations = store.stats.relocations
        outcomes = store.degrade_many(
            [(row_key, "location", LOCATION, 1), (row_key, "salary", SALARY, 2)],
            now=1.0)
        assert len(outcomes) == 2
        row = store.read(row_key)
        assert row.values["location"] == "Paris"
        assert row.values["salary"] == "2000-3000"
        assert row.levels == {"location": 1, "salary": 2}
        assert store.stats.relocations == relocations    # one in-place rewrite

    def test_degrade_many_noop_level_reported_unchanged(self, store):
        row_key = store.insert(ROW, now=0.0)
        outcomes = store.degrade_many([(row_key, "location", LOCATION, 0)], now=1.0)
        assert outcomes[0].changed is False
        assert store.read(row_key).values["location"] == "1 Main Street, Paris"
        # No WAL record, no degrade counted for a pure no-op.
        assert store.stats.degrade_steps == 0

    def test_degrade_many_single_scrub_pass(self):
        store = make_store("rewrite")
        keys = [store.insert({**ROW, "id": i}, now=0.0) for i in range(1, 11)]
        rewrites = store.wal.stats.scrub_rewrites
        store.degrade_many([(k, "location", LOCATION, 1) for k in keys], now=1.0)
        assert store.wal.stats.scrub_rewrites == rewrites + 1
        assert b"Main Street" not in store.wal.raw_image()

    def test_degrade_many_flushes_each_page_once(self):
        store = make_store("rewrite")
        keys = [store.insert({**ROW, "id": i}, now=0.0) for i in range(1, 41)]
        flushes = store.buffer_pool.stats.flushes
        store.degrade_many([(k, "location", LOCATION, 1) for k in keys], now=1.0)
        assert (store.buffer_pool.stats.flushes - flushes) <= store.heap.page_count

    def test_degrade_many_crypto_destroys_old_keys(self):
        store = make_store("crypto")
        row_key = store.insert(ROW, now=0.0)
        store.degrade_many([(row_key, "location", LOCATION, 2)], now=1.0)
        key_id = (store.schema.name, row_key, "location", 0)
        assert store.keystore.is_destroyed(key_id)
        assert store.read(row_key).values["location"] == "Ile-de-France"

    def test_degrade_many_backwards_rejected(self, store):
        row_key = store.insert(ROW, now=0.0)
        store.degrade(row_key, "location", LOCATION, to_level=2, now=1.0)
        with pytest.raises(PolicyError):
            store.degrade_many([(row_key, "location", LOCATION, 1)], now=2.0)

    def test_page_of_reflects_location(self, store):
        row_key = store.insert(ROW, now=0.0)
        assert store.page_of(row_key) == store._locations[row_key].page_id
        assert store.page_of(999) is None

    def test_remove_many_bulk(self):
        store = make_store("rewrite")
        keys = [store.insert({**ROW, "id": i}, now=0.0) for i in range(1, 6)]
        rewrites = store.wal.stats.scrub_rewrites
        assert store.remove_many(keys + [999], now=1.0) == 5
        assert store.row_count == 0
        assert store.stats.removals == 5
        # One scrub pass for the whole batch.
        assert store.wal.stats.scrub_rewrites == rewrites + 1
        assert b"alice" not in store.wal.raw_image()


class TestNonRecoverability:
    """After degradation / removal the accurate plaintext must be gone everywhere."""

    @pytest.mark.parametrize("strategy", ["rewrite", "crypto"])
    def test_degrade_removes_accurate_value_from_heap(self, strategy):
        store = make_store(strategy)
        row_key = store.insert(ROW, now=0.0)
        store.degrade(row_key, "location", LOCATION, to_level=1, now=1.0)
        assert b"1 Main Street, Paris" not in store.heap.raw_image()

    @pytest.mark.parametrize("strategy", ["rewrite", "crypto"])
    def test_removal_scrubs_heap_and_wal(self, strategy):
        store = make_store(strategy)
        row_key = store.insert(ROW, now=0.0)
        store.remove(row_key, now=1.0)
        image = store.raw_image()
        assert b"1 Main Street, Paris" not in image
        assert b"alice" not in image

    def test_crypto_wal_never_contains_plaintext(self):
        store = make_store("crypto")
        store.insert(ROW, now=0.0)
        # Even before any degradation, the WAL image only holds ciphertext for
        # degradable values.
        assert b"1 Main Street, Paris" not in store.wal.raw_image()

    def test_rewrite_wal_scrubbed_only_after_removal(self):
        store = make_store("rewrite")
        row_key = store.insert(ROW, now=0.0)
        assert b"1 Main Street, Paris" in store.wal.raw_image()
        store.remove(row_key, now=1.0)
        assert b"1 Main Street, Paris" not in store.wal.raw_image()

    def test_crypto_keys_destroyed_on_degrade(self):
        store = make_store("crypto")
        row_key = store.insert(ROW, now=0.0)
        assert store.keystore.live_key_count == 2
        store.degrade(row_key, "location", LOCATION, to_level=1, now=1.0)
        assert store.keystore.is_destroyed(("person", row_key, "location", 0))

    def test_crypto_destroyed_key_reads_as_suppressed(self):
        store = make_store("crypto")
        row_key = store.insert(ROW, now=0.0)
        # Simulate a crash that destroyed the key without rewriting the value.
        store.keystore.destroy_key(("person", row_key, "location", 0))
        assert store.read(row_key).values["location"] is SUPPRESSED


class TestRecoveryHelpers:
    def test_restore_row_reinserts_missing_row(self):
        store = make_store("rewrite")
        row_key = store.insert(ROW, now=0.0)
        payload = store.heap.read(store._location(row_key))
        store.remove(row_key, now=1.0, scrub_log=False)
        assert not store.exists(row_key)
        restored_key = store.restore_row(payload)
        assert restored_key == row_key
        assert store.read(row_key).values["name"] == "alice"

    def test_rebuild_locations_after_restart(self):
        store = make_store("rewrite")
        keys = [store.insert({**ROW, "id": i}, now=0.0) for i in range(1, 4)]
        store.flush()
        store._locations.clear()
        store.rebuild_locations()
        assert set(store.row_keys()) == set(keys)
        next_key = store.insert({**ROW, "id": 99}, now=1.0)
        assert next_key == max(keys) + 1

    def test_nulls_roundtrip(self):
        store = make_store("rewrite")
        row_key = store.insert({"id": 5, "name": None,
                                "location": "1 Main Street, Paris", "salary": 100},
                               now=0.0)
        assert store.read(row_key).values["name"] is NULL
