"""Unit tests for the columnar segment layer (``storage/segment.py``).

The :class:`SegmentSet` is a derived acceleration structure: these tests pin
down the invariants the read path and the columnar degradation path rely on —
O(1) hook maintenance, replace-on-reinsert, zone-map soundness (bounds only
widen; missing values never enter min/max), sentinel identity in the value
vectors, and rebuild-from-heap equivalence.
"""

from repro import InstantDB
from repro.core.values import NULL, SUPPRESSED, sort_key
from repro.storage.segment import SEGMENT_ROWS, SegmentSet, ZoneMap


def make_store(rows=0):
    db = InstantDB()
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, grp TEXT, val INT)")
    if rows:
        db.executemany("INSERT INTO t VALUES (?, ?, ?)",
                       [(i, f"g{i % 3}", i * 10) for i in range(1, rows + 1)])
    return db, db.table_store("t")


class TestZoneMap:
    def test_observe_tracks_min_max(self):
        zone = ZoneMap()
        for value in (5, 1, 9, 3):
            zone.observe(value)
        assert zone.low_value == 1 and zone.high_value == 9
        assert zone.may_match_eq(sort_key(4))
        assert not zone.may_match_eq(sort_key(10))

    def test_missing_values_do_not_widen_bounds(self):
        zone = ZoneMap()
        zone.observe(7)
        zone.observe(NULL)
        zone.observe(SUPPRESSED)
        assert zone.missing == 2
        assert zone.low_value == zone.high_value == 7

    def test_all_missing_segment_never_matches(self):
        zone = ZoneMap()
        zone.observe(NULL)
        assert not zone.may_match_eq(sort_key(1))
        assert not zone.may_match_range(None, None, True, True)

    def test_range_overlap_and_exclusive_edges(self):
        zone = ZoneMap()
        zone.observe(10)
        zone.observe(20)
        key = sort_key
        assert zone.may_match_range(key(15), key(25), True, True)
        assert zone.may_match_range(key(20), None, True, True)
        assert not zone.may_match_range(key(20), None, False, True)
        assert not zone.may_match_range(None, key(10), True, False)
        assert not zone.may_match_range(key(21), key(30), True, True)


class TestSegmentSetHooks:
    def test_store_mirror_tracks_every_mutation(self):
        db, store = make_store(rows=5)
        segments = store.columnarize()
        assert len(segments) == 5
        db.execute("INSERT INTO t VALUES (6, 'g0', 60)")
        db.execute("UPDATE t SET val = 999 WHERE id = 2")
        db.execute("DELETE FROM t WHERE id = 3")
        assert len(segments) == 5                     # 6 inserted, 3 removed
        segment, position = segments.locate(2)
        assert segment.values["val"][position] == 999
        assert segments.locate(3) is None
        assert segments.stats.inserts >= 6
        assert segments.stats.value_changes >= 1
        assert segments.stats.removes >= 1

    def test_reinsert_replaces_the_old_slot(self):
        _db, store = make_store(rows=3)
        segments = store.columnarize()
        segments.on_insert(2, 0.0, {"id": 2, "grp": "new", "val": -1}, {})
        segment, position = segments.locate(2)
        assert segment.values["grp"][position] == "new"
        # Exactly one live slot for row 2 across all segments.
        live = [s.row_keys[i] for s in segments.segments
                for i in s.live_positions()]
        assert live.count(2) == 1

    def test_segments_roll_over_at_capacity(self):
        _db, store = make_store()
        segments = store.columnarize()
        for i in range(SEGMENT_ROWS + 10):
            segments.on_insert(i, 0.0, {"id": i, "grp": "g", "val": i}, {})
        assert len(segments.segments) == 2
        assert len(segments.segments[0]) == SEGMENT_ROWS
        assert len(segments.segments[1]) == 10

    def test_dead_slots_drop_out_of_live_positions(self):
        _db, store = make_store(rows=4)
        segments = store.columnarize()
        segments.on_remove(1)
        segments.on_remove(4)
        segment = segments.segments[0]
        assert segment.live_count == 2
        assert [segment.row_keys[i] for i in segment.live_positions()] == [2, 3]

    def test_group_rows_partitions_a_wave_by_segment(self):
        _db, store = make_store()
        segments = store.columnarize()
        for i in range(SEGMENT_ROWS + 5):
            segments.on_insert(i, 0.0, {"id": i, "grp": "g", "val": i}, {})
        chunks = segments.group_rows([0, 1, SEGMENT_ROWS + 1, 10**9])
        assert {s.segment_id for s in chunks} == {0, 1}
        by_id = {s.segment_id: positions for s, positions in chunks.items()}
        assert by_id[0] == [0, 1] and len(by_id[1]) == 1


class TestSentinelsAndLevels:
    def test_sentinels_round_trip_by_identity(self):
        _db, store = make_store(rows=1)
        segments = store.columnarize()
        segments.on_value_change(1, "grp", SUPPRESSED)
        segment, position = segments.locate(1)
        assert segment.values["grp"][position] is SUPPRESSED
        segments.on_value_change(1, "grp", NULL)
        assert segment.values["grp"][position] is NULL

    def test_level_vector_exists_only_for_degradable_columns(self):
        db = InstantDB()
        from repro import AttributeLCP
        from repro.core.domains import build_location_tree
        location = db.register_domain(build_location_tree())
        db.register_policy(AttributeLCP(
            location, transitions=["1 h", "1 d", "1 month", "3 months"],
            name="lcp"))
        db.execute("CREATE TABLE v (id INT PRIMARY KEY, location TEXT "
                   "DEGRADABLE DOMAIN location POLICY lcp)")
        db.execute("INSERT INTO v VALUES (1, '1 Main Street, Paris')")
        segments = db.table_store("v").columnarize()
        segment, position = segments.locate(1)
        assert set(segment.levels) == {"location"}
        assert segment.levels["location"][position] == 0
        segments.on_value_change(1, "location", "Paris", level=1)
        assert segment.levels["location"][position] == 1
        assert segment.values["location"][position] == "Paris"


class TestRebuild:
    def test_rebuild_matches_incremental_maintenance(self):
        db, store = make_store(rows=50)
        maintained = store.columnarize()
        db.execute("DELETE FROM t WHERE id <= 10")
        db.execute("UPDATE t SET grp = 'z' WHERE id > 40")
        fresh = SegmentSet(store.schema)
        fresh.rebuild(store.scan())
        def visible(segments):
            return sorted(
                (s.row_keys[i], s.values["grp"][i], s.values["val"][i])
                for s in segments.segments for i in s.live_positions())
        assert visible(fresh) == visible(maintained)
        assert fresh.stats.rebuilds == 1

    def test_rebuild_tightens_zone_maps(self):
        _db, store = make_store(rows=20)
        segments = store.columnarize()
        # Narrowing update leaves stale (wide) bounds...
        segments.on_value_change(20, "val", 5)
        assert segments.segments[0].zones["val"].high_value == 200
        # ...while a rebuild recomputes them from live values only.
        segments.rebuild(store.scan())
        assert segments.segments[0].zones["val"].high_value == 200  # heap truth
        _db.execute("UPDATE t SET val = 5 WHERE id = 20")
        segments.rebuild(store.scan())
        assert segments.segments[0].zones["val"].high_value == 190
