"""Tests for heap files."""

import pytest

from repro.core.errors import RecordNotFoundError, StorageError
from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile, RecordId
from repro.storage.pager import MemoryPager


@pytest.fixture
def heap():
    return HeapFile(BufferPool(MemoryPager(page_size=512), capacity=8), name="t")


class TestHeapFile:
    def test_insert_read_roundtrip(self, heap):
        rid = heap.insert(b"hello")
        assert heap.read(rid) == b"hello"
        assert heap.exists(rid)
        assert heap.record_count == 1

    def test_records_spill_to_new_pages(self, heap):
        rids = [heap.insert(b"x" * 100) for _ in range(20)]
        assert heap.page_count > 1
        assert len({rid.page_id for rid in rids}) == heap.page_count
        for rid in rids:
            assert heap.read(rid) == b"x" * 100

    def test_oversized_record_rejected(self, heap):
        with pytest.raises(StorageError):
            heap.insert(b"x" * 1000)

    def test_delete(self, heap):
        rid = heap.insert(b"bye")
        heap.delete(rid)
        assert not heap.exists(rid)
        assert heap.record_count == 0
        with pytest.raises(RecordNotFoundError):
            heap.read(rid)

    def test_update_in_place_keeps_record_id(self, heap):
        rid = heap.insert(b"aaaa")
        new_rid = heap.update(rid, b"bbbb")
        assert new_rid == rid
        assert heap.read(rid) == b"bbbb"

    def test_update_relocates_when_page_full(self, heap):
        rid = heap.insert(b"a" * 150)
        heap.insert(b"b" * 150)
        heap.insert(b"c" * 100)
        new_rid = heap.update(rid, b"d" * 400)
        assert heap.read(new_rid) == b"d" * 400
        assert heap.record_count == 3
        if new_rid != rid:
            assert not heap.exists(rid)

    def test_scan_returns_live_records_only(self, heap):
        keep = heap.insert(b"keep")
        victim = heap.insert(b"victim")
        heap.delete(victim)
        scanned = dict(heap.scan())
        assert scanned == {keep: b"keep"}
        assert list(heap.record_ids()) == [keep]

    def test_compact_preserves_data(self, heap):
        rids = [heap.insert(f"rec{i}".encode()) for i in range(5)]
        heap.delete(rids[2])
        heap.compact()
        for i, rid in enumerate(rids):
            if i == 2:
                continue
            assert heap.read(rid) == f"rec{i}".encode()

    def test_raw_image_covers_all_pages(self, heap):
        for _ in range(10):
            heap.insert(b"y" * 120)
        assert len(heap.raw_image()) == heap.page_count * 512

    def test_exists_on_unknown_page(self, heap):
        assert not heap.exists(RecordId(page_id=999, slot=0))

    def test_flush_writes_through(self, heap):
        rid = heap.insert(b"durable")
        heap.flush()
        pager = heap.buffer_pool.pager
        assert pager.read_page(rid.page_id).read(rid.slot) == b"durable"
