"""Property-based tests on the storage substrate and the GT index (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.domains import build_location_tree
from repro.index.gt_index import GTIndex
from repro.storage.page import SlottedPage
from repro.storage.wal import LogRecord, LogRecordType

LOCATION = build_location_tree()
ADDRESSES = LOCATION.leaves()

payloads = st.binary(min_size=1, max_size=120)


class TestSlottedPageProperties:
    @given(st.lists(payloads, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_inserted_records_always_readable(self, records):
        page = SlottedPage(page_size=4096)
        stored = []
        for payload in records:
            if not page.can_fit(len(payload)):
                break
            stored.append((page.insert(payload), payload))
        for slot, payload in stored:
            assert page.read(slot) == payload

    @given(st.lists(payloads, min_size=1, max_size=15), st.data())
    @settings(max_examples=50, deadline=None)
    def test_secure_delete_removes_bytes_and_keeps_others(self, records, data):
        page = SlottedPage(page_size=4096, secure=True)
        slots = []
        for payload in records:
            if not page.can_fit(len(payload)):
                break
            slots.append((page.insert(payload), payload))
        if not slots:
            return
        victim_index = data.draw(st.integers(min_value=0, max_value=len(slots) - 1))
        victim_slot, victim_payload = slots[victim_index]
        page.delete(victim_slot)
        for index, (slot, payload) in enumerate(slots):
            if index == victim_index:
                assert not page.is_live(slot)
            else:
                assert page.read(slot) == payload
        if len(victim_payload) >= 8 and all(
                victim_payload != payload for i, (s, payload) in enumerate(slots)
                if i != victim_index):
            assert victim_payload not in page.raw()

    @given(st.lists(payloads, min_size=1, max_size=15))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_through_bytes(self, records):
        page = SlottedPage(page_size=4096)
        stored = []
        for payload in records:
            if not page.can_fit(len(payload)):
                break
            stored.append((page.insert(payload), payload))
        restored = SlottedPage.from_bytes(page.to_bytes())
        for slot, payload in stored:
            assert restored.read(slot) == payload


class TestWALRecordProperties:
    @given(
        lsn=st.integers(min_value=1, max_value=2**31),
        txn_id=st.integers(min_value=0, max_value=2**31),
        record_type=st.sampled_from(list(LogRecordType)),
        table=st.text(max_size=30),
        row_key=st.integers(min_value=-1, max_value=2**31),
        attribute=st.text(max_size=20),
        before=st.one_of(st.none(), st.binary(max_size=100)),
        after=st.one_of(st.none(), st.binary(max_size=100)),
        timestamp=st.floats(min_value=0, max_value=1e12, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_log_record_roundtrip(self, lsn, txn_id, record_type, table, row_key,
                                  attribute, before, after, timestamp):
        record = LogRecord(lsn=lsn, txn_id=txn_id, record_type=record_type,
                           table=table, row_key=row_key, attribute=attribute,
                           before=before, after=after, timestamp=timestamp)
        assert LogRecord.decode(record.encode()) == record


class TestGTIndexProperties:
    @given(st.lists(st.tuples(st.sampled_from(ADDRESSES),
                              st.integers(min_value=0, max_value=200)),
                    min_size=1, max_size=80))
    @settings(max_examples=50, deadline=None)
    def test_search_at_matches_reference_filter(self, entries):
        """search_at(v, k) equals filtering rows whose stored value generalizes to v."""
        index = GTIndex("gt", LOCATION)
        stored = []
        for address, row_key in entries:
            index.insert_at(address, 0, row_key)
            stored.append((address, row_key))
        for level in (1, 3):
            probe = LOCATION.generalize(stored[0][0], level)
            expected = sorted({row_key for address, row_key in stored
                               if LOCATION.generalize(address, level) == probe})
            assert index.search_at(probe, level) == expected
        index.verify()

    @given(st.lists(st.tuples(st.sampled_from(ADDRESSES),
                              st.integers(min_value=0, max_value=200)),
                    min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_bulk_degradation_preserves_coarse_answers(self, entries):
        """Degrading every bucket one level never changes country-level answers."""
        index = GTIndex("gt", LOCATION)
        seen = set()
        for address, row_key in entries:
            if (address, row_key) in seen:
                continue
            seen.add((address, row_key))
            index.insert_at(address, 0, row_key)
        country = LOCATION.generalize(entries[0][0], 3)
        before = index.search_at(country, 3)
        for address in list(index.values_at_level(0)):
            index.degrade_bucket(address, 0, 1)
        after = index.search_at(country, 3)
        assert before == after
        assert index.level_histogram()[0] == 0
