"""Tests for slotted pages and secure space reclamation."""

import pytest

from repro.core.errors import PageFullError, RecordNotFoundError, StorageError
from repro.storage.page import SlottedPage


class TestBasicOperations:
    def test_insert_and_read(self):
        page = SlottedPage()
        slot = page.insert(b"hello")
        assert page.read(slot) == b"hello"
        assert page.slot_count == 1

    def test_multiple_inserts_get_distinct_slots(self):
        page = SlottedPage()
        slots = [page.insert(f"record {i}".encode()) for i in range(10)]
        assert slots == list(range(10))
        for i, slot in enumerate(slots):
            assert page.read(slot) == f"record {i}".encode()

    def test_empty_record_rejected(self):
        with pytest.raises(StorageError):
            SlottedPage().insert(b"")

    def test_read_deleted_slot_raises(self):
        page = SlottedPage()
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(RecordNotFoundError):
            page.read(slot)

    def test_read_out_of_range_raises(self):
        with pytest.raises(RecordNotFoundError):
            SlottedPage().read(0)

    def test_is_live(self):
        page = SlottedPage()
        slot = page.insert(b"x")
        assert page.is_live(slot)
        page.delete(slot)
        assert not page.is_live(slot)
        assert not page.is_live(99)

    def test_page_full(self):
        page = SlottedPage(page_size=256)
        with pytest.raises(PageFullError):
            for _ in range(100):
                page.insert(b"x" * 32)

    def test_free_space_decreases(self):
        page = SlottedPage()
        before = page.free_space()
        page.insert(b"x" * 100)
        assert page.free_space() < before

    def test_minimum_page_size(self):
        with pytest.raises(StorageError):
            SlottedPage(page_size=16)


class TestUpdate:
    def test_update_same_size_in_place(self):
        page = SlottedPage()
        slot = page.insert(b"aaaa")
        assert page.update(slot, b"bbbb")
        assert page.read(slot) == b"bbbb"

    def test_update_shrinking(self):
        page = SlottedPage()
        slot = page.insert(b"a" * 100)
        assert page.update(slot, b"b" * 10)
        assert page.read(slot) == b"b" * 10

    def test_update_growing_uses_free_space(self):
        page = SlottedPage()
        slot = page.insert(b"a" * 10)
        assert page.update(slot, b"b" * 50)
        assert page.read(slot) == b"b" * 50

    def test_update_growing_without_space_returns_false(self):
        page = SlottedPage(page_size=128)
        slot = page.insert(b"a" * 40)
        page.insert(b"c" * 40)
        assert page.update(slot, b"b" * 80) is False
        # Old record untouched when relocation is needed.
        assert page.read(slot) == b"a" * 40

    def test_update_deleted_raises(self):
        page = SlottedPage()
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(RecordNotFoundError):
            page.update(slot, b"y")


class TestSecureReclamation:
    def test_delete_zeroes_payload(self):
        page = SlottedPage(secure=True)
        secret = b"TOP-SECRET-ADDRESS"
        slot = page.insert(secret)
        assert secret in page.raw()
        page.delete(slot)
        assert secret not in page.raw()

    def test_insecure_page_leaves_ghost(self):
        page = SlottedPage(secure=False)
        secret = b"TOP-SECRET-ADDRESS"
        slot = page.insert(secret)
        page.delete(slot)
        assert secret in page.raw()

    def test_shrinking_update_zeroes_tail(self):
        page = SlottedPage(secure=True)
        slot = page.insert(b"SENSITIVE-TAIL-DATA")
        page.update(slot, b"ok")
        assert b"TAIL-DATA" not in page.raw()

    def test_growing_update_zeroes_old_copy(self):
        page = SlottedPage(secure=True)
        slot = page.insert(b"OLD-SECRET")
        page.update(slot, b"N" * 64)
        assert b"OLD-SECRET" not in page.raw()

    def test_compaction_zeroes_holes_and_preserves_slots(self):
        page = SlottedPage(secure=True)
        keep = page.insert(b"keep-me")
        ghost = page.insert(b"GHOST-RECORD")
        page.insert(b"also-keep")
        page.delete(ghost)
        free_before = page.free_space()
        free_after = page.compact()
        assert free_after >= free_before
        assert page.read(keep) == b"keep-me"
        assert b"GHOST-RECORD" not in page.raw()


class TestPersistence:
    def test_to_bytes_roundtrip(self):
        page = SlottedPage()
        slot_a = page.insert(b"alpha")
        slot_b = page.insert(b"beta")
        restored = SlottedPage.from_bytes(page.to_bytes())
        assert restored.read(slot_a) == b"alpha"
        assert restored.read(slot_b) == b"beta"
        assert restored.live_slots() == [slot_a, slot_b]

    def test_from_bytes_validates_size(self):
        with pytest.raises(StorageError):
            SlottedPage(page_size=4096, data=b"short")

    def test_records_listing(self):
        page = SlottedPage()
        page.insert(b"a")
        slot = page.insert(b"b")
        page.delete(slot)
        assert page.records() == [(0, b"a")]
