"""Tests for the cryptographic-erasure key store."""

import pytest

from repro.core.errors import CryptoError, KeyDestroyedError
from repro.storage.crypto import KeyStore


class TestKeyLifecycle:
    def test_create_key_is_idempotent(self):
        store = KeyStore()
        key_id = ("person", 1, "location", 0)
        assert store.create_key(key_id) == store.create_key(key_id)
        assert store.live_key_count == 1

    def test_destroy_key(self):
        store = KeyStore()
        key_id = ("t", 1, "c", 0)
        store.create_key(key_id)
        assert store.destroy_key(key_id) is True
        assert store.is_destroyed(key_id)
        assert not store.has_key(key_id)
        # Destroying again reports no live key.
        assert store.destroy_key(key_id) is False

    def test_destroyed_key_cannot_be_recreated(self):
        store = KeyStore()
        key_id = ("t", 1, "c", 0)
        store.create_key(key_id)
        store.destroy_key(key_id)
        with pytest.raises(KeyDestroyedError):
            store.create_key(key_id)

    def test_destroy_matching_prefix(self):
        store = KeyStore()
        store.create_key(("person", 1, "location", 0))
        store.create_key(("person", 1, "salary", 0))
        store.create_key(("person", 2, "location", 0))
        destroyed = store.destroy_matching(("person", 1))
        assert destroyed == 2
        assert store.live_key_count == 1

    def test_deterministic_seed_reproducible(self):
        a = KeyStore(deterministic_seed=b"seed")
        b = KeyStore(deterministic_seed=b"seed")
        assert a.create_key(("t", 1)) == b.create_key(("t", 1))


class TestEncryption:
    def test_roundtrip(self):
        store = KeyStore()
        key_id = ("person", 1, "location", 0)
        blob = store.encrypt(key_id, b"21 rue X, Paris")
        assert blob != b"21 rue X, Paris"
        assert store.decrypt(key_id, blob) == b"21 rue X, Paris"

    def test_ciphertext_hides_plaintext(self):
        store = KeyStore()
        blob = store.encrypt(("k",), b"SECRET-LOCATION-VALUE")
        assert b"SECRET-LOCATION-VALUE" not in blob

    def test_decrypt_after_destroy_raises(self):
        store = KeyStore()
        key_id = ("person", 1, "location", 0)
        blob = store.encrypt(key_id, b"sensitive")
        store.destroy_key(key_id)
        with pytest.raises(KeyDestroyedError):
            store.decrypt(key_id, blob)

    def test_decrypt_without_key_raises(self):
        store = KeyStore()
        with pytest.raises(CryptoError):
            store.decrypt(("missing",), b"x" * 20)

    def test_short_ciphertext_rejected(self):
        store = KeyStore()
        store.create_key(("k",))
        with pytest.raises(CryptoError):
            store.decrypt(("k",), b"tiny")

    def test_empty_plaintext_roundtrip(self):
        store = KeyStore()
        blob = store.encrypt(("k",), b"")
        assert store.decrypt(("k",), blob) == b""

    def test_long_plaintext_roundtrip(self):
        store = KeyStore()
        payload = bytes(range(256)) * 40
        blob = store.encrypt(("k",), payload)
        assert store.decrypt(("k",), blob) == payload

    def test_stats_counters(self):
        store = KeyStore()
        store.encrypt(("a",), b"x")
        store.encrypt(("b",), b"y")
        store.decrypt(("a",), store.encrypt(("a",), b"z"))
        store.destroy_key(("b",))
        assert store.stats.keys_created == 2
        assert store.stats.keys_destroyed == 1
        assert store.stats.encryptions == 3
        assert store.stats.decryptions == 1
