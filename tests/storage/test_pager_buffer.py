"""Tests for pagers and the LRU buffer pool."""

import pytest

from repro.core.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.page import SlottedPage
from repro.storage.pager import FilePager, MemoryPager, open_pager


class TestMemoryPager:
    def test_allocate_and_roundtrip(self):
        pager = MemoryPager()
        page_id = pager.allocate()
        page = pager.read_page(page_id)
        slot = page.insert(b"data")
        pager.write_page(page_id, page)
        assert pager.read_page(page_id).read(slot) == b"data"

    def test_unknown_page_rejected(self):
        pager = MemoryPager()
        with pytest.raises(StorageError):
            pager.read_page(3)
        with pytest.raises(StorageError):
            pager.write_page(3, SlottedPage())

    def test_num_pages(self):
        pager = MemoryPager()
        assert pager.num_pages() == 0
        pager.allocate()
        pager.allocate()
        assert pager.num_pages() == 2
        assert list(pager.page_ids()) == [0, 1]

    def test_raw_image_concatenates_pages(self):
        pager = MemoryPager(page_size=512)
        pager.allocate()
        pager.allocate()
        assert len(pager.raw_image()) == 1024


class TestFilePager:
    def test_persistence_across_reopen(self, tmp_path):
        path = str(tmp_path / "pages.db")
        pager = FilePager(path)
        page_id = pager.allocate()
        page = pager.read_page(page_id)
        slot = page.insert(b"durable")
        pager.write_page(page_id, page)
        pager.sync()
        pager.close()

        reopened = FilePager(path)
        assert reopened.num_pages() == 1
        assert reopened.read_page(page_id).read(slot) == b"durable"
        reopened.close()

    def test_corrupt_size_rejected(self, tmp_path):
        path = tmp_path / "bad.db"
        path.write_bytes(b"x" * 100)
        with pytest.raises(StorageError):
            FilePager(str(path))

    def test_open_pager_dispatch(self, tmp_path):
        assert isinstance(open_pager(None), MemoryPager)
        assert isinstance(open_pager(":memory:"), MemoryPager)
        file_pager = open_pager(str(tmp_path / "f.db"))
        assert isinstance(file_pager, FilePager)
        file_pager.close()


class TestBufferPool:
    def test_capacity_must_be_positive(self):
        with pytest.raises(StorageError):
            BufferPool(MemoryPager(), capacity=0)

    def test_hit_and_miss_counting(self):
        pool = BufferPool(MemoryPager(), capacity=4)
        page_id = pool.new_page()
        pool.get_page(page_id)
        pool.get_page(page_id)
        assert pool.stats.hits == 2
        assert pool.stats.misses == 0
        assert pool.stats.hit_ratio == 1.0

    def test_dirty_pages_written_back_on_flush(self):
        pager = MemoryPager()
        pool = BufferPool(pager, capacity=4)
        page_id = pool.new_page()
        page = pool.get_page(page_id)
        slot = page.insert(b"payload")
        pool.mark_dirty(page_id)
        pool.flush_all()
        assert pager.read_page(page_id).read(slot) == b"payload"

    def test_mark_dirty_requires_resident_page(self):
        pool = BufferPool(MemoryPager(), capacity=2)
        with pytest.raises(StorageError):
            pool.mark_dirty(42)

    def test_eviction_flushes_dirty_victim(self):
        pager = MemoryPager()
        pool = BufferPool(pager, capacity=2)
        first = pool.new_page()
        page = pool.get_page(first)
        slot = page.insert(b"evict-me")
        pool.mark_dirty(first)
        # Fill the pool to force the eviction of the first page.
        for _ in range(3):
            pool.new_page()
        assert pool.stats.evictions >= 1
        assert pager.read_page(first).read(slot) == b"evict-me"

    def test_lru_keeps_recently_used(self):
        pool = BufferPool(MemoryPager(), capacity=2)
        a = pool.new_page()
        b = pool.new_page()
        pool.get_page(a)            # a is now most recently used
        pool.new_page()             # evicts b
        assert a in list(pool.resident_pages())
        assert b not in list(pool.resident_pages())

    def test_drop_cache_simulates_restart(self):
        pager = MemoryPager()
        pool = BufferPool(pager, capacity=4)
        page_id = pool.new_page()
        page = pool.get_page(page_id)
        slot = page.insert(b"still-there")
        pool.mark_dirty(page_id)
        pool.drop_cache()
        assert len(pool) == 0
        assert pool.get_page(page_id).read(slot) == b"still-there"

    def test_is_dirty_flag(self):
        pool = BufferPool(MemoryPager(), capacity=4)
        page_id = pool.new_page()
        assert not pool.is_dirty(page_id)
        pool.get_page(page_id).insert(b"x")
        pool.mark_dirty(page_id)
        assert pool.is_dirty(page_id)
        pool.flush_page(page_id)
        assert not pool.is_dirty(page_id)
