"""Tests for the degradation-aware write-ahead log."""

import pytest

from repro.core.errors import WALError
from repro.storage.wal import LogRecord, LogRecordType, WriteAheadLog


class TestBasicProtocol:
    def test_append_assigns_dense_lsns(self):
        wal = WriteAheadLog()
        first = wal.append(LogRecordType.BEGIN, txn_id=1)
        second = wal.append(LogRecordType.COMMIT, txn_id=1)
        assert (first.lsn, second.lsn) == (1, 2)
        assert wal.last_lsn == 2
        assert len(wal) == 2

    def test_flush_advances_flushed_lsn(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.BEGIN, txn_id=1)
        assert wal.flushed_lsn == 0
        wal.flush()
        assert wal.flushed_lsn == 1

    def test_records_for(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.INSERT, 1, table="person", row_key=7, after=b"img")
        wal.append(LogRecordType.INSERT, 1, table="person", row_key=8, after=b"img")
        wal.append(LogRecordType.DEGRADE, 0, table="person", row_key=7, attribute="loc",
                   after=b"1")
        assert len(wal.records_for("person", 7)) == 2

    def test_degrade_record_must_not_carry_before_image(self):
        wal = WriteAheadLog()
        with pytest.raises(WALError):
            wal.append(LogRecordType.DEGRADE, 0, table="t", row_key=1,
                       attribute="loc", before=b"accurate!")

    def test_record_encode_decode_roundtrip(self):
        record = LogRecord(lsn=3, txn_id=9, record_type=LogRecordType.UPDATE,
                           table="person", row_key=4, attribute="name",
                           before=b"old", after=b"new", timestamp=12.5)
        decoded = LogRecord.decode(record.encode())
        assert decoded == record

    def test_decode_malformed_rejected(self):
        from repro.storage.serialization import encode_record
        with pytest.raises(WALError):
            LogRecord.decode(encode_record([1, 2, 3]))


class TestScrubbing:
    def test_scrub_removes_images_but_keeps_structure(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.INSERT, 1, table="person", row_key=7,
                   after=b"SENSITIVE")
        wal.append(LogRecordType.UPDATE, 1, table="person", row_key=7,
                   attribute="name", before=b"SENSITIVE", after=b"SENSITIVE2")
        scrubbed = wal.scrub_record("person", 7)
        assert scrubbed == 2
        assert b"SENSITIVE" not in wal.raw_image()
        # The structural records are still there plus an audit SCRUB record.
        types = [record.record_type for record in wal]
        assert types.count(LogRecordType.INSERT) == 1
        assert LogRecordType.SCRUB in types

    def test_scrub_untouched_rows_left_alone(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.INSERT, 1, table="person", row_key=1, after=b"keep-me")
        wal.append(LogRecordType.INSERT, 1, table="person", row_key=2, after=b"scrub-me")
        wal.scrub_record("person", 2)
        assert b"keep-me" in wal.raw_image()
        assert b"scrub-me" not in wal.raw_image()

    def test_scrub_nothing_matching_returns_zero(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.BEGIN, 1)
        assert wal.scrub_record("person", 99) == 0
        assert wal.stats.scrub_rewrites == 0


class TestTruncation:
    def test_truncate_until_drops_prefix(self):
        wal = WriteAheadLog()
        for _ in range(5):
            wal.append(LogRecordType.BEGIN, txn_id=1)
        dropped = wal.truncate_until(3)
        assert dropped == 3
        assert [record.lsn for record in wal] == [4, 5]

    def test_truncate_nothing(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.BEGIN, 1)
        assert wal.truncate_until(0) == 0


class TestPersistence:
    def test_reload_from_file(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.append(LogRecordType.BEGIN, txn_id=1)
        wal.append(LogRecordType.INSERT, txn_id=1, table="t", row_key=1, after=b"x")
        wal.append(LogRecordType.COMMIT, txn_id=1)
        wal.flush()

        reopened = WriteAheadLog(path)
        assert len(reopened) == 3
        assert reopened.last_lsn == 3
        assert reopened.records()[1].after == b"x"

    def test_torn_tail_ignored_on_reload(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(str(path))
        wal.append(LogRecordType.BEGIN, txn_id=1)
        wal.append(LogRecordType.COMMIT, txn_id=1)
        wal.flush()
        # Simulate a torn write: chop the last few bytes of the file.
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        reopened = WriteAheadLog(str(path))
        assert len(reopened) == 1

    def test_scrub_rewrites_file(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(str(path))
        wal.append(LogRecordType.INSERT, 1, table="t", row_key=1, after=b"PLAINTEXT")
        wal.flush()
        assert b"PLAINTEXT" in path.read_bytes()
        wal.scrub_record("t", 1)
        assert b"PLAINTEXT" not in path.read_bytes()
