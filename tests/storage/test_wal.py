"""Tests for the degradation-aware write-ahead log."""

import pytest

from repro.core.errors import WALError
from repro.storage.wal import LogRecord, LogRecordType, WriteAheadLog


class TestBasicProtocol:
    def test_append_assigns_dense_lsns(self):
        wal = WriteAheadLog()
        first = wal.append(LogRecordType.BEGIN, txn_id=1)
        second = wal.append(LogRecordType.COMMIT, txn_id=1)
        assert (first.lsn, second.lsn) == (1, 2)
        assert wal.last_lsn == 2
        assert len(wal) == 2

    def test_flush_advances_flushed_lsn(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.BEGIN, txn_id=1)
        assert wal.flushed_lsn == 0
        wal.flush()
        assert wal.flushed_lsn == 1

    def test_records_for(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.INSERT, 1, table="person", row_key=7, after=b"img")
        wal.append(LogRecordType.INSERT, 1, table="person", row_key=8, after=b"img")
        wal.append(LogRecordType.DEGRADE, 0, table="person", row_key=7, attribute="loc",
                   after=b"1")
        assert len(wal.records_for("person", 7)) == 2

    def test_degrade_record_must_not_carry_before_image(self):
        wal = WriteAheadLog()
        with pytest.raises(WALError):
            wal.append(LogRecordType.DEGRADE, 0, table="t", row_key=1,
                       attribute="loc", before=b"accurate!")

    def test_record_encode_decode_roundtrip(self):
        record = LogRecord(lsn=3, txn_id=9, record_type=LogRecordType.UPDATE,
                           table="person", row_key=4, attribute="name",
                           before=b"old", after=b"new", timestamp=12.5)
        decoded = LogRecord.decode(record.encode())
        assert decoded == record

    def test_decode_malformed_rejected(self):
        from repro.storage.serialization import encode_record
        with pytest.raises(WALError):
            LogRecord.decode(encode_record([1, 2, 3]))


class TestScrubbing:
    def test_scrub_removes_images_but_keeps_structure(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.INSERT, 1, table="person", row_key=7,
                   after=b"SENSITIVE")
        wal.append(LogRecordType.UPDATE, 1, table="person", row_key=7,
                   attribute="name", before=b"SENSITIVE", after=b"SENSITIVE2")
        scrubbed = wal.scrub_record("person", 7)
        assert scrubbed == 2
        assert b"SENSITIVE" not in wal.raw_image()
        # The structural records are still there plus an audit SCRUB record.
        types = [record.record_type for record in wal]
        assert types.count(LogRecordType.INSERT) == 1
        assert LogRecordType.SCRUB in types

    def test_scrub_untouched_rows_left_alone(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.INSERT, 1, table="person", row_key=1, after=b"keep-me")
        wal.append(LogRecordType.INSERT, 1, table="person", row_key=2, after=b"scrub-me")
        wal.scrub_record("person", 2)
        assert b"keep-me" in wal.raw_image()
        assert b"scrub-me" not in wal.raw_image()

    def test_scrub_nothing_matching_returns_zero(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.BEGIN, 1)
        assert wal.scrub_record("person", 99) == 0
        assert wal.stats.scrub_rewrites == 0


class TestBulkScrubbing:
    def test_scrub_records_single_rewrite_for_many_keys(self):
        wal = WriteAheadLog()
        for row_key in range(1, 6):
            wal.append(LogRecordType.INSERT, 1, table="person", row_key=row_key,
                       after=f"SECRET-{row_key}".encode())
        scrubbed = wal.scrub_records([("person", row_key) for row_key in range(1, 6)])
        assert scrubbed == 5
        assert wal.stats.scrubbed_records == 5
        # One log pass for the whole batch, not one per key.
        assert wal.stats.scrub_rewrites == 1
        assert b"SECRET" not in wal.raw_image()
        # One aggregate SCRUB audit record for the whole batch: a mass-removal
        # wave grows the log by O(1) audit bytes, not one record per key.
        audits = [record for record in wal
                  if record.record_type is LogRecordType.SCRUB]
        assert len(audits) == 1
        assert audits[0].table == "person"
        assert audits[0].attribute == "batch:5"

    def test_scrub_records_empty_and_unmatched_keys(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.INSERT, 1, table="person", row_key=1, after=b"keep")
        assert wal.scrub_records([]) == 0
        assert wal.scrub_records([("person", 99), ("other", 1)]) == 0
        assert wal.stats.scrub_rewrites == 0
        assert b"keep" in wal.raw_image()

    def test_scrub_records_rewrites_file_once(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(str(path))
        wal.append(LogRecordType.INSERT, 1, table="t", row_key=1, after=b"AAA-ONE")
        wal.append(LogRecordType.INSERT, 1, table="t", row_key=2, after=b"BBB-TWO")
        wal.flush()
        wal.scrub_records([("t", 1), ("t", 2)])
        data = path.read_bytes()
        assert b"AAA-ONE" not in data and b"BBB-TWO" not in data
        # The rewrite left the file consistent: reloading sees every record once.
        assert len(WriteAheadLog(str(path))) == len(wal)


class TestAppendOnlyFlush:
    def test_flush_appends_only_new_records(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(str(path))
        wal.append(LogRecordType.BEGIN, txn_id=1)
        wal.flush()
        size_after_first = path.stat().st_size
        wal.append(LogRecordType.COMMIT, txn_id=1)
        wal.flush()
        grown = path.stat().st_size - size_after_first
        assert 0 < grown < size_after_first * 2
        reopened = WriteAheadLog(str(path))
        assert [record.lsn for record in reopened] == [1, 2]

    def test_flush_without_pending_records_writes_nothing(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(str(path))
        wal.append(LogRecordType.BEGIN, txn_id=1)
        wal.flush()
        written = wal.stats.bytes_written
        wal.flush()
        wal.flush()
        assert wal.stats.bytes_written == written

    def test_flush_after_scrub_does_not_duplicate(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(str(path))
        wal.append(LogRecordType.INSERT, 1, table="t", row_key=1, after=b"img")
        wal.flush()
        wal.scrub_record("t", 1)       # rewrites the file (SCRUB appended too)
        wal.flush()                    # must not re-append already-persisted records
        reopened = WriteAheadLog(str(path))
        assert len(reopened) == len(wal)

    def test_append_after_torn_tail_survives_reload(self, tmp_path):
        """Reopening truncates a torn tail so appended records stay readable."""
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(str(path))
        wal.append(LogRecordType.BEGIN, txn_id=1)
        wal.flush()
        path.write_bytes(path.read_bytes() + b"\x07\x00")   # torn partial write
        reopened = WriteAheadLog(str(path))
        assert len(reopened) == 1
        reopened.append(LogRecordType.COMMIT, txn_id=1)
        reopened.flush()
        # The flushed record must not hide behind leftover garbage bytes.
        final = WriteAheadLog(str(path))
        assert [record.record_type for record in final] == \
            [LogRecordType.BEGIN, LogRecordType.COMMIT]

    def test_insert_run_does_linear_log_io(self, tmp_path):
        """1k appended+flushed records cost O(n) bytes of log I/O, not O(n^2)."""
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(str(path))
        for row_key in range(1000):
            wal.append(LogRecordType.INSERT, txn_id=row_key, table="t",
                       row_key=row_key, after=b"payload-bytes")
            wal.flush()                # one durability point per insert
        file_size = path.stat().st_size
        # Append-only: total bytes written ~= final file size.  The old
        # rewrite-everything flush wrote ~n/2 times the file size (O(n^2)).
        assert wal.stats.bytes_written == file_size
        assert wal.stats.flushed == 1000
        reopened = WriteAheadLog(str(path))
        assert len(reopened) == 1000


class TestTruncation:
    def test_truncate_until_drops_prefix(self):
        wal = WriteAheadLog()
        for _ in range(5):
            wal.append(LogRecordType.BEGIN, txn_id=1)
        dropped = wal.truncate_until(3)
        assert dropped == 3
        assert [record.lsn for record in wal] == [4, 5]

    def test_truncate_nothing(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.BEGIN, 1)
        assert wal.truncate_until(0) == 0


class TestPersistence:
    def test_reload_from_file(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.append(LogRecordType.BEGIN, txn_id=1)
        wal.append(LogRecordType.INSERT, txn_id=1, table="t", row_key=1, after=b"x")
        wal.append(LogRecordType.COMMIT, txn_id=1)
        wal.flush()

        reopened = WriteAheadLog(path)
        assert len(reopened) == 3
        assert reopened.last_lsn == 3
        assert reopened.records()[1].after == b"x"

    def test_torn_tail_ignored_on_reload(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(str(path))
        wal.append(LogRecordType.BEGIN, txn_id=1)
        wal.append(LogRecordType.COMMIT, txn_id=1)
        wal.flush()
        # Simulate a torn write: chop the last few bytes of the file.
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        reopened = WriteAheadLog(str(path))
        assert len(reopened) == 1

    def test_scrub_rewrites_file(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(str(path))
        wal.append(LogRecordType.INSERT, 1, table="t", row_key=1, after=b"PLAINTEXT")
        wal.flush()
        assert b"PLAINTEXT" in path.read_bytes()
        wal.scrub_record("t", 1)
        assert b"PLAINTEXT" not in path.read_bytes()


class TestPayloadEncodingCache:
    """Scrub/truncate rewrites must not re-encode every surviving record."""

    def test_scrub_rewrite_reuses_cached_encodings(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(str(path))
        for row_key in range(1, 101):
            wal.append(LogRecordType.INSERT, 1, table="t", row_key=row_key,
                       after=b"img")
        wal.append(LogRecordType.INSERT, 1, table="t", row_key=999,
                   after=b"SECRET")
        wal.flush()
        encodes_after_flush = wal.stats.payload_encodes
        assert encodes_after_flush == 101
        wal.scrub_record("t", 999)     # full file rewrite
        # Only the scrubbed record (rebuilt without its image) and the SCRUB
        # audit record need a fresh encoding; the 100 survivors are served
        # from the per-record cache.
        assert wal.stats.payload_encodes - encodes_after_flush == 2
        assert wal.stats.payload_cache_hits >= 100

    def test_truncate_rewrite_reuses_cached_encodings(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(str(path))
        for row_key in range(1, 51):
            wal.append(LogRecordType.INSERT, 1, table="t", row_key=row_key)
        wal.flush()
        encodes = wal.stats.payload_encodes
        wal.truncate_until(10)
        assert wal.stats.payload_encodes == encodes   # survivors all cached

    def test_reloaded_records_seed_the_cache(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(str(path))
        for row_key in range(1, 21):
            wal.append(LogRecordType.INSERT, 1, table="t", row_key=row_key)
        wal.flush()
        reopened = WriteAheadLog(str(path))
        reopened.raw_image()
        assert reopened.stats.payload_encodes == 0
        assert reopened.stats.payload_cache_hits == 20
