"""Test package (packaged so `from ..conftest import build_engine` resolves)."""
