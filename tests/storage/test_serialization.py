"""Tests for the record codec, including hypothesis round-trip properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import StorageError
from repro.core.values import NULL, REMOVED, SUPPRESSED
from repro.storage.serialization import (
    decode_record,
    decode_value,
    encode_record,
    encode_value,
)


class TestEncodeDecodeValue:
    @pytest.mark.parametrize("value", [
        0, 1, -1, 2**40, -(2**40), 3.14, -2.5, 0.0, True, False,
        "", "hello", "héllo wörld", "a" * 1000, b"", b"\x00\xff", NULL,
        SUPPRESSED, REMOVED,
    ])
    def test_roundtrip(self, value):
        encoded = encode_value(value)
        decoded, offset = decode_value(encoded)
        assert offset == len(encoded)
        if isinstance(value, bytes):
            assert decoded == value
        else:
            assert decoded is value or decoded == value

    def test_none_becomes_null(self):
        decoded, _ = decode_value(encode_value(None))
        assert decoded is NULL

    def test_bool_distinct_from_int(self):
        assert decode_value(encode_value(True))[0] is True
        assert decode_value(encode_value(1))[0] == 1
        assert decode_value(encode_value(1))[0] is not True

    def test_unsupported_type_rejected(self):
        with pytest.raises(StorageError):
            encode_value(object())

    def test_truncated_int_rejected(self):
        data = encode_value(12345)
        with pytest.raises(StorageError):
            decode_value(data[:-2])

    def test_truncated_string_rejected(self):
        data = encode_value("hello world")
        with pytest.raises(StorageError):
            decode_value(data[:-3])

    def test_unknown_tag_rejected(self):
        with pytest.raises(StorageError):
            decode_value(bytes([99]))

    def test_empty_buffer_rejected(self):
        with pytest.raises(StorageError):
            decode_value(b"")


class TestEncodeDecodeRecord:
    def test_roundtrip_mixed_record(self):
        record = (1, "alice", 2500.5, True, NULL, SUPPRESSED, b"blob")
        assert decode_record(encode_record(record)) == record

    def test_empty_record(self):
        assert decode_record(encode_record(())) == ()

    def test_trailing_bytes_rejected(self):
        data = encode_record((1, 2)) + b"junk"
        with pytest.raises(StorageError):
            decode_record(data)

    def test_missing_count_rejected(self):
        with pytest.raises(StorageError):
            decode_record(b"\x01")

    def test_record_is_binary_stable(self):
        assert encode_record((1, "a")) == encode_record((1, "a"))


simple_values = st.one_of(
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=200),
    st.booleans(),
    st.binary(max_size=200),
    st.just(NULL),
    st.just(SUPPRESSED),
    st.just(REMOVED),
)


class TestSerializationProperties:
    @given(st.lists(simple_values, max_size=20))
    def test_record_roundtrip(self, values):
        record = tuple(values)
        decoded = decode_record(encode_record(record))
        assert len(decoded) == len(record)
        for original, restored in zip(record, decoded):
            if isinstance(original, float):
                assert restored == pytest.approx(original)
            else:
                assert restored == original

    @given(simple_values)
    def test_value_roundtrip_consumes_everything(self, value):
        encoded = encode_value(value)
        _decoded, offset = decode_value(encoded)
        assert offset == len(encoded)
