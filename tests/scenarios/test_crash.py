"""Randomized kill-point crash test over the scenario.

A seeded macro-workload runs on two identical engines over separate data
directories.  One of them is killed *mid-degradation-wave* — at a seeded WAL
append offset, so every seed dies at a different point of the wave — then
reopened and recovered.  The recovered engine must (a) satisfy the retention
invariant, (b) leak nothing forensically, and (c) answer every read-back
query identically to its never-crashed twin.
"""

import pytest

from repro.api.connection import connect as local_connect
from repro.engine.database import InstantDB
from repro.scenarios.driver import canonical_rows
from repro.scenarios import (
    InclusionGenerator,
    InclusionScenario,
    OpStream,
    ScenarioVariant,
    check_engine,
    retention_report,
    run_op,
)
from repro.workloads.distributions import Distributions

DAY = 86400.0
SCALE = 30
PREFIX_OPS = 60


def arm_crash(db: InstantDB, appends_left: int) -> None:
    """Kill the process (KeyboardInterrupt) after ``appends_left`` more WAL
    appends — between a record hitting the log and the wave completing."""
    original = db.wal.append
    state = {"left": appends_left}

    def crashing_append(*args, **kwargs):
        if state["left"] <= 0:
            raise KeyboardInterrupt
        state["left"] -= 1
        return original(*args, **kwargs)

    db.wal.append = crashing_append


def crash(db: InstantDB) -> None:
    """Abandon without close(): no checkpoint, no final WAL flush."""
    db.daemon.pause()


@pytest.mark.parametrize("kill_seed", (101, 202, 303))
def test_mid_wave_crash_recovers_to_twin_equivalence(tmp_path, kill_seed):
    scenario = InclusionScenario(SCALE)
    generator = InclusionGenerator(scenario, seed=kill_seed)
    salaries = generator.sensitive_salaries()

    victim = ScenarioVariant("compiled", scenario,
                             data_dir=str(tmp_path / "victim"))
    twin = ScenarioVariant("compiled", scenario,
                           data_dir=str(tmp_path / "twin"))
    generator.load(victim.connection)
    generator.load(twin.connection)

    # Identical mixed prefix on both engines (waves excluded: the clock must
    # still be at zero when the killer wave fires).
    stream = OpStream(scenario, seed=kill_seed, count=PREFIX_OPS)
    prefix = [op for op in stream.ops()
              if op.kind not in ("wave", "forensic")]
    for op in prefix:
        run_op(victim, op)
        run_op(twin, op)

    # The killer wave: 10 days due at once; the victim dies at a seeded WAL
    # append offset partway through applying it.
    kill_after = Distributions(kill_seed).uniform_int(2, 12)
    arm_crash(victim.engine, kill_after)
    with pytest.raises(KeyboardInterrupt):
        victim.advance(10 * DAY)
    crash(victim.engine)
    twin.advance(10 * DAY)

    # Reopen the directory cold, reinstall the (code-defined) catalog, and
    # let recovery replay the heap and drain the overdue schedule.
    recovered = InstantDB(data_dir=str(tmp_path / "victim"))
    scenario.install(recovered)
    report = recovered.recover(drain=True)
    assert report.registrations > 0

    # Clock skew between the twins is possible (the victim may have died
    # before its clock advance was durable) — align to the later clock.
    twin_now = twin.engine.clock.now()
    recovered_now = recovered.clock.now()
    if recovered_now < twin_now:
        recovered.advance_time(twin_now - recovered_now)
    elif twin_now < recovered_now:
        twin.advance(recovered_now - twin_now)

    try:
        # (a) retention invariant holds on the recovered engine
        violations = check_engine(recovered)
        assert violations == [], violations[:3]
        # (b) nothing expired is forensically recoverable, and the forensic
        # counters agree with the never-crashed twin
        assert retention_report(recovered, salaries) == \
            retention_report(twin.engine, salaries) == \
            {"violations": 0, "leaks": 0}
        # (c) every read-back answers identically to the twin
        read_backs = [op for op in OpStream(scenario, seed=kill_seed + 7,
                                            count=60).ops()
                      if op.kind in ("point_read", "range_scan", "join",
                                     "aggregate")]
        assert read_backs
        conn = local_connect(engine=recovered)
        try:
            for op in read_backs:
                expected = twin.execute(op.sql, op.params,
                                        purpose=op.purpose).fetchall()
                twin.commit()
                actual = conn.execute(op.sql, op.params,
                                      purpose=op.purpose).fetchall()
                conn.commit()
                assert canonical_rows(actual, op.ordered) == \
                    canonical_rows(expected, op.ordered), op.describe()
        finally:
            conn.close()
    finally:
        recovered.close()
        twin.close()
