"""Seeded kill-offset sweep: crash anywhere in the wave, recover, compare.

A seeded macro-workload runs on two identical engines over separate data
directories.  The twin applies a 10-day degradation wave first, counting how
many WAL appends the wave costs; the victim is then killed at a seeded
offset inside that span — each sweep stratum covers a different slice of the
wave, so together the sweep samples kill points across the *whole* WAL
rather than a fixed handful near the start.  ``REPRO_CRASH_SWEEP`` widens
the sweep (default 3 strata) for soak runs.

The victim's directory is reopened **cold** with one-call recovery — the
catalog comes back from its WAL CATALOG record, no DDL re-run — and must
(a) satisfy the retention invariant, (b) leak nothing forensically, and
(c) answer every read-back query identically to its never-crashed twin.
"""

import os
import random

import pytest

from repro.api.connection import connect as local_connect
from repro.engine.database import InstantDB
from repro.scenarios.driver import canonical_rows
from repro.scenarios import (
    InclusionGenerator,
    InclusionScenario,
    OpStream,
    ScenarioVariant,
    check_engine,
    retention_report,
    run_op,
)

DAY = 86400.0
SCALE = 30
PREFIX_OPS = 60
SWEEP = int(os.environ.get("REPRO_CRASH_SWEEP", "3"))
BASE_SEED = int(os.environ.get("REPRO_CRASH_SEED", "101"))


def arm_crash(db: InstantDB, appends_left: int) -> None:
    """Kill the process (KeyboardInterrupt) after ``appends_left`` more WAL
    appends — between a record hitting the log and the wave completing."""
    original = db.wal.append
    state = {"left": appends_left}

    def crashing_append(*args, **kwargs):
        if state["left"] <= 0:
            raise KeyboardInterrupt
        state["left"] -= 1
        return original(*args, **kwargs)

    db.wal.append = crashing_append


def count_appends(db: InstantDB):
    """Count WAL appends from now on; returns ``(counter_dict, restore)``."""
    original = db.wal.append
    state = {"count": 0}

    def counting_append(*args, **kwargs):
        state["count"] += 1
        return original(*args, **kwargs)

    db.wal.append = counting_append
    return state, lambda: setattr(db.wal, "append", original)


def crash(db: InstantDB) -> None:
    """Abandon without close(): no checkpoint, no final WAL flush."""
    db.daemon.pause()


@pytest.mark.parametrize("stratum", range(SWEEP))
def test_mid_wave_crash_recovers_to_twin_equivalence(tmp_path, stratum):
    kill_seed = BASE_SEED + 101 * stratum
    scenario = InclusionScenario(SCALE)
    generator = InclusionGenerator(scenario, seed=kill_seed)
    salaries = generator.sensitive_salaries()

    victim = ScenarioVariant("compiled", scenario,
                             data_dir=str(tmp_path / "victim"))
    twin = ScenarioVariant("compiled", scenario,
                           data_dir=str(tmp_path / "twin"))
    generator.load(victim.connection)
    generator.load(twin.connection)

    # Identical mixed prefix on both engines (waves excluded: the clock must
    # still be at zero when the killer wave fires).
    stream = OpStream(scenario, seed=kill_seed, count=PREFIX_OPS)
    prefix = [op for op in stream.ops()
              if op.kind not in ("wave", "forensic")]
    for op in prefix:
        run_op(victim, op)
        run_op(twin, op)

    # The killer wave: 10 days due at once.  The twin runs it first, counting
    # its WAL appends; the engines are deterministic over identical state, so
    # the victim's wave costs the same number.  The kill offset is then drawn
    # from this stratum's slice of [0, appends) — the sweep as a whole covers
    # the entire wave, not just its first few records.
    counter, restore = count_appends(twin.engine)
    twin.advance(10 * DAY)
    restore()
    wave_appends = counter["count"]
    assert wave_appends > 0
    lo = wave_appends * stratum // SWEEP
    hi = max(lo + 1, wave_appends * (stratum + 1) // SWEEP)
    kill_after = random.Random(kill_seed).randrange(lo, hi)

    arm_crash(victim.engine, kill_after)
    with pytest.raises(KeyboardInterrupt):
        victim.advance(10 * DAY)
    crash(victim.engine)

    # Reopen the directory cold: one-call recovery restores the catalog from
    # the WAL's CATALOG record (no DDL re-run), replays the heap, and drains
    # the overdue schedule.
    recovered = InstantDB(data_dir=str(tmp_path / "victim"))
    report = recovered.recover(drain=True)
    assert report.registrations > 0, \
        f"kill_seed={kill_seed} kill_after={kill_after}/{wave_appends}"
    assert recovered.catalog.tables(), "catalog did not survive the crash"

    # Clock skew between the twins is possible (the victim may have died
    # before its clock advance was durable) — align to the later clock.
    twin_now = twin.engine.clock.now()
    recovered_now = recovered.clock.now()
    if recovered_now < twin_now:
        recovered.advance_time(twin_now - recovered_now)
    elif twin_now < recovered_now:
        twin.advance(recovered_now - twin_now)

    context = f"kill_seed={kill_seed} kill_after={kill_after}/{wave_appends}"
    try:
        # (a) retention invariant holds on the recovered engine
        violations = check_engine(recovered)
        assert violations == [], (context, violations[:3])
        # (b) nothing expired is forensically recoverable, and the forensic
        # counters agree with the never-crashed twin
        assert retention_report(recovered, salaries) == \
            retention_report(twin.engine, salaries) == \
            {"violations": 0, "leaks": 0}, context
        # (c) every read-back answers identically to the twin
        read_backs = [op for op in OpStream(scenario, seed=kill_seed + 7,
                                            count=60).ops()
                      if op.kind in ("point_read", "range_scan", "join",
                                     "aggregate")]
        assert read_backs
        conn = local_connect(engine=recovered)
        try:
            for op in read_backs:
                expected = twin.execute(op.sql, op.params,
                                        purpose=op.purpose).fetchall()
                twin.commit()
                actual = conn.execute(op.sql, op.params,
                                      purpose=op.purpose).fetchall()
                conn.commit()
                assert canonical_rows(actual, op.ordered) == \
                    canonical_rows(expected, op.ordered), \
                    (context, op.describe())
        finally:
            conn.close()
    finally:
        # The victim stays abandoned (a crashed process never close()s);
        # its directory now belongs to ``recovered``.
        recovered.close()
        twin.close()
