"""The seeded generators: determinism, scaling, FK integrity."""

from repro.scenarios import InclusionGenerator, InclusionScenario, OpStream
from repro.scenarios.generator import SALARY_BASE, SALARY_STEP, employee_salary
from repro.scenarios.inclusion import TABLES, paranoid_user


class TestScenarioSizing:
    def test_sizes_scale_together(self):
        small, big = InclusionScenario(100), InclusionScenario(10_000)
        assert big.num_users == 100 * small.num_users
        assert big.num_applications == 2 * big.num_users
        assert big.num_companies > small.num_companies
        assert big.num_employees > small.num_employees

    def test_paranoid_subset_is_deterministic(self):
        scenario = InclusionScenario(200)
        subset = scenario.paranoid_users()
        assert subset == [uid for uid in range(1, 201) if paranoid_user(uid)]
        assert 0 < len(subset) < 200


class TestDeterminism:
    def test_same_seed_same_rows(self):
        scenario = InclusionScenario(80)
        first = InclusionGenerator(scenario, seed=13)
        second = InclusionGenerator(scenario, seed=13)
        for table in (first.users(), first.job_applications()):
            twin = {"users": second.users,
                    "job_applications": second.job_applications}[table.table]()
            assert table.rows == twin.rows

    def test_different_seed_different_rows(self):
        scenario = InclusionScenario(80)
        a = InclusionGenerator(scenario, seed=13).users()
        b = InclusionGenerator(scenario, seed=14).users()
        assert a.rows != b.rows

    def test_op_stream_is_deterministic(self):
        scenario = InclusionScenario(80)
        ops_a = OpStream(scenario, seed=21, count=120).ops()
        ops_b = OpStream(scenario, seed=21, count=120).ops()
        assert ops_a == ops_b
        assert OpStream(scenario, seed=22, count=120).ops() != ops_a


class TestRowShape:
    def test_batches_follow_fk_safe_order(self):
        scenario = InclusionScenario(50)
        generator = InclusionGenerator(scenario, seed=5)
        order = []
        for batch in generator.batches(batch_size=16):
            if not order or order[-1] != batch.table:
                order.append(batch.table)
        assert tuple(order) == TABLES

    def test_foreign_keys_resolve(self):
        scenario = InclusionScenario(60)
        generator = InclusionGenerator(scenario, seed=5)
        users = {row[0] for row in generator.users().rows}
        companies = {row[0] for row in generator.companies().rows}
        for row in generator.job_applications().rows:
            assert row[1] in users and row[2] in companies
        for row in generator.employee_records().rows:
            assert row[1] in users and row[2] in companies

    def test_salaries_are_unique_and_traceable(self):
        scenario = InclusionScenario(90)
        generator = InclusionGenerator(scenario, seed=5)
        salaries = generator.sensitive_salaries()
        assert len(set(salaries.values())) == scenario.num_employees
        assert salaries[1] == SALARY_BASE + SALARY_STEP
        assert all(employee_salary(eid) == s for eid, s in salaries.items())

    def test_insert_sql_matches_columns(self):
        batch = InclusionGenerator(InclusionScenario(20), seed=5).companies()
        assert batch.insert_sql.count("?") == len(batch.columns)
        assert batch.insert_sql.startswith("INSERT INTO companies ")
