"""The cross-engine differential oracle, run for real.

Five fixed seeds, ~200 mixed ops each (plus a full-lifecycle epilogue),
replayed in lockstep against all four engine variants.  Any disagreement
fails with the seed and a minimized op trace, so a regression here is
immediately reproducible from the failure message alone.
"""

import pytest

from repro.scenarios import (
    DifferentialOracle,
    InclusionGenerator,
    InclusionScenario,
    OpStream,
    ScenarioVariant,
    VARIANT_NAMES,
    format_failure,
    minimize_trace,
)

from .conftest import build_loaded

SEEDS = (1, 2, 3, 5, 8)
SCALE = 40
OPS = 200


def run_seed(seed, names=VARIANT_NAMES, check_retention=True):
    scenario = InclusionScenario(SCALE)
    variants, generator = build_loaded(scenario, seed, names=names)
    try:
        stream = OpStream(scenario, seed=seed, count=OPS)
        ops = stream.ops() + stream.epilogue(OPS)
        oracle = DifferentialOracle(variants,
                                    salaries=generator.sensitive_salaries(),
                                    check_retention=check_retention)
        return oracle.run(ops, fail_fast=False), ops, generator
    finally:
        for variant in variants.values():
            variant.close()


def fail_with_trace(seed, report, ops, generator):
    """Shrink to a reproducer on the first disagreeing pair, then fail."""
    first = report.mismatches[0]

    def build_pair():
        scenario = InclusionScenario(SCALE)
        pair, _ = build_loaded(scenario, seed,
                               names=(first.reference, first.variant))
        return pair[first.reference], pair[first.variant]

    trace = minimize_trace(build_pair, ops, first,
                           salaries=generator.sensitive_salaries())
    pytest.fail(format_failure(seed, report.mismatches, trace))


@pytest.mark.parametrize("seed", SEEDS)
def test_all_variants_agree(seed):
    report, ops, generator = run_seed(seed)
    if report.mismatches:
        fail_with_trace(seed, report, ops, generator)
    assert report.ops_run == len(ops)
    assert report.retention_violations == 0
    assert report.retention_checks > 0
    # the mix exercised every op kind, including waves and forensic scans
    assert set(report.kind_counts) >= {"point_read", "insert", "wave"}


def test_edge_semantics_agree_across_variants():
    """Edges the random mix rarely hits, pinned explicitly: no-purpose reads
    of degraded attributes (stored-accuracy observation), deletes of rows the
    policy already removed, and the typed refusal to update a degradable
    column — all four variants must behave identically."""
    from repro.core.errors import PolicyError
    from repro.scenarios import Op, run_op

    scenario = InclusionScenario(30)
    variants, generator = build_loaded(scenario, 9)
    try:
        for variant in variants.values():
            variant.advance(4 * 86400.0)
        # updates to degradable columns are refused uniformly
        for variant in variants.values():
            with pytest.raises(PolicyError):
                variant.execute(
                    "UPDATE job_applications SET applicant_address = ? "
                    "WHERE id = ?", ("9 Rue Centrale, Paris", 3))
            variant.rollback()
        probes = [
            Op(0, "point_read",
               "SELECT id, address, health_note FROM users ORDER BY id", (),
               None, True, tables=("users",)),
            Op(1, "aggregate",
               "SELECT applicant_address, COUNT(*) AS n "
               "FROM job_applications GROUP BY applicant_address", (),
               None, tables=("job_applications",)),
        ]
        for variant in variants.values():
            variant.advance(90 * 86400.0)   # employee_records fully removed
        probes.append(Op(2, "delete",
                         "DELETE FROM employee_records WHERE id = ?", (1,),
                         tables=("employee_records",)))
        probes.append(Op(3, "aggregate",
                         "SELECT COUNT(*) AS n FROM employee_records", (),
                         None, True, tables=("employee_records",)))
        for op in probes:
            results = {name: run_op(variant, op)
                       for name, variant in variants.items()}
            reference = results["interpreted"]
            for name, result in results.items():
                assert result.matches(reference), (op.describe(), name)
    finally:
        for variant in variants.values():
            variant.close()


def test_oracle_catches_a_diverging_engine():
    """Sanity check that the oracle can actually fail: skew one variant's
    clock mid-stream and the wave payloads (and every later read) diverge."""
    scenario = InclusionScenario(20)
    variants, generator = build_loaded(scenario, 4,
                                       names=("interpreted", "compiled"))
    try:
        variants["compiled"].engine.advance_time(86400.0)  # sabotage
        stream = OpStream(scenario, seed=4, count=40)
        oracle = DifferentialOracle(variants,
                                    salaries=generator.sensitive_salaries(),
                                    check_retention=False)
        report = oracle.run(stream.ops(), fail_fast=True)
        assert report.mismatches
        text = format_failure(4, report.mismatches)
        assert "seed=4" in text and "reference" in text
    finally:
        for variant in variants.values():
            variant.close()


def test_minimizer_shrinks_a_failing_trace():
    """The minimized trace still reproduces and is genuinely smaller."""
    scenario = InclusionScenario(20)
    variants, generator = build_loaded(scenario, 6,
                                       names=("interpreted", "compiled"))
    try:
        variants["compiled"].engine.advance_time(86400.0)
        stream = OpStream(scenario, seed=6, count=60)
        ops = stream.ops()
        oracle = DifferentialOracle(variants, check_retention=False)
        report = oracle.run(ops, fail_fast=True)
        assert report.mismatches
    finally:
        for variant in variants.values():
            variant.close()
    first = report.mismatches[0]

    def build_pair():
        pair, _ = build_loaded(InclusionScenario(20), 6,
                               names=("interpreted", "compiled"))
        # reproduce the sabotage so the divergence is deterministic
        pair["compiled"].engine.advance_time(86400.0)
        return pair["interpreted"], pair["compiled"]

    trace = minimize_trace(build_pair, ops, first, budget=8)
    assert trace
    assert len(trace) < len([op for op in ops
                             if op.index <= first.op.index]) or len(trace) == 1
    assert trace[-1].index <= first.op.index
