"""The retention invariant checker, exercised both ways.

Negative direction: a healthy engine must show zero violations at any clock.
Positive direction: a wedged degradation daemon (steps due but unapplied) must
be *caught* — the checker derives the accuracy floor from the policy automaton
itself, so a silently-stalled pipeline cannot hide.
"""

from repro.privacy.forensic import scan_engine
from repro.scenarios import (
    InclusionGenerator,
    InclusionScenario,
    ScenarioVariant,
    check_engine,
    expired_employee_salaries,
    forensic_leaks,
    retention_report,
)
from repro.scenarios.inclusion import paranoid_user

DAY = 86400.0


def build_loaded_engine(scale=40, seed=9):
    variant = ScenarioVariant("compiled", InclusionScenario(scale))
    generator = InclusionGenerator(variant.scenario, seed=seed)
    generator.load(variant.connection)
    return variant, generator


class TestCheckerNegative:
    def test_fresh_load_has_no_violations(self, close_all):
        variant, _ = build_loaded_engine()
        close_all(variant)
        assert check_engine(variant.engine) == []

    def test_healthy_engine_stays_clean_across_waves(self, close_all):
        variant, generator = build_loaded_engine()
        close_all(variant)
        for _ in range(6):
            variant.advance(3.3 * DAY)
            assert check_engine(variant.engine) == []
        report = retention_report(variant.engine,
                                  generator.sensitive_salaries())
        assert report == {"violations": 0, "leaks": 0}


class TestCheckerPositive:
    def test_wedged_daemon_is_caught(self, close_all):
        variant, _ = build_loaded_engine()
        close_all(variant)
        variant.engine.daemon.pause()
        variant.advance(5 * DAY)       # steps come due but cannot apply
        violations = check_engine(variant.engine)
        assert violations, "stalled degradation must violate the invariant"
        sample = violations[0]
        assert sample.stored_level < sample.required_level
        assert "mandates" in sample.describe()
        # resuming the daemon drains the backlog and restores the invariant
        variant.engine.daemon.resume()
        variant.advance(0)
        assert check_engine(variant.engine) == []

    def test_paranoid_rows_are_held_to_the_stricter_floor(self, close_all):
        variant, _ = build_loaded_engine(scale=60)
        close_all(variant)
        variant.engine.daemon.pause()
        # 12 hours: only the paranoid cadence ("4 hours") has a step due yet.
        variant.advance(0.5 * DAY)
        violations = check_engine(variant.engine)
        assert violations
        assert {v.table for v in violations} == {"job_applications"}
        store = variant.engine.stores["job_applications"]
        flagged = {v.row_key for v in violations}
        for stored in store.scan():
            if stored.row_key in flagged:
                assert paranoid_user(stored.values["user_id"])


class TestForensicSurface:
    def test_live_salaries_are_recoverable_expired_ones_are_not(self, close_all):
        variant, generator = build_loaded_engine(scale=30)
        close_all(variant)
        salaries = generator.sensitive_salaries()
        # Positive control: fresh exact salaries do live in the raw bytes.
        live = list(salaries.values())[:5]
        assert scan_engine(variant.engine, live).residual_values
        assert expired_employee_salaries(variant.engine, salaries) == []
        # Past the first transition every exact salary is expired — and gone.
        variant.advance(3 * DAY)
        expired = expired_employee_salaries(variant.engine, salaries)
        assert expired
        assert forensic_leaks(variant.engine, expired) == 0

    def test_removed_rows_count_as_expired(self, close_all):
        variant, generator = build_loaded_engine(scale=30)
        close_all(variant)
        salaries = generator.sensitive_salaries()
        variant.advance(120 * DAY)     # employee_records fully removed
        rows = variant.execute(
            "SELECT id FROM employee_records").fetchall()
        assert rows == []
        expired = expired_employee_salaries(variant.engine, salaries)
        assert len(expired) == min(50, len(salaries))
        assert forensic_leaks(variant.engine, expired) == 0
