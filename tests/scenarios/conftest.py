"""Shared helpers for the scenario-suite tests."""

from typing import Dict, Optional, Sequence, Tuple

import pytest

from repro.scenarios import (
    InclusionGenerator,
    InclusionScenario,
    ScenarioVariant,
    VARIANT_NAMES,
    build_variants,
)


def build_loaded(scenario: InclusionScenario, seed: int,
                 names: Sequence[str] = VARIANT_NAMES,
                 data_dirs: Optional[Dict[str, str]] = None,
                 ) -> Tuple[Dict[str, ScenarioVariant], InclusionGenerator]:
    """Build the requested variants and load identical seeded data into each."""
    variants = build_variants(scenario, names=names, data_dirs=data_dirs)
    generator = InclusionGenerator(scenario, seed=seed)
    try:
        for variant in variants.values():
            generator.load(variant.connection)
    except BaseException:
        for variant in variants.values():
            variant.close()
        raise
    return variants, generator


@pytest.fixture
def close_all():
    """Collects variants and closes them at teardown even on failure."""
    opened = []
    yield opened.append
    for variant in opened:
        variant.close()
