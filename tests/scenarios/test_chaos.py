"""Chaos mode: the scenario oracle under a seeded fault schedule.

Every variant replays a seeded op stream while its I/O seams fail on a
seeded schedule — WAL flush errors, torn writes, ENOSPC, pager sync faults,
dropped/stalled/truncated sockets, clock skips.  The run must heal (retry,
reconnect, recover), end with zero retention violations and zero forensic
leaks, answer read-backs identically to an unfaulted twin after a cold
one-call reopen, and prove every armed fault actually fired.

Seeds come from ``REPRO_CHAOS_SEED`` / ``REPRO_CHAOS_FAULT_SEED`` when set
(for reproducing a reported failure), with fixed defaults otherwise; every
failure message carries both seeds so the run can be replayed exactly.
"""

import os

import pytest

from repro.scenarios import VARIANT_NAMES, run_chaos
from repro.scenarios.chaos import ENGINE_FAULT_SITES, NETWORK_FAULT_SITES

SCALE = 30
OPS = 200

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "11"))
FAULT_SEED = int(os.environ.get("REPRO_CHAOS_FAULT_SEED", "42"))


@pytest.mark.parametrize("variant", VARIANT_NAMES)
def test_chaos_run_heals_to_twin_equivalence(tmp_path, variant):
    report = run_chaos(variant, seed=SEED, fault_seed=FAULT_SEED,
                       data_dir=str(tmp_path / "victim"),
                       scale=SCALE, ops=OPS)
    assert report.ok, report.describe()
    # The schedule must have armed (and fired) every engine-side fault kind;
    # the remote variant adds every wire fault kind on top.
    expected_sites = dict(ENGINE_FAULT_SITES)
    if variant == "remote":
        expected_sites.update(NETWORK_FAULT_SITES)
    expected = {(site, kind) for site, kinds in expected_sites.items()
                for kind in kinds}
    assert set(report.armed) == expected
    assert set(report.fired) >= expected, report.describe()
    # The schedule actually bit: the victim had to heal at least once.
    assert report.retries > 0, report.describe()


def test_chaos_is_reproducible_from_seeds(tmp_path):
    """The printed (seed, fault_seed) pair pins the entire run."""
    first = run_chaos("columnar", seed=SEED + 1, fault_seed=FAULT_SEED + 1,
                      data_dir=str(tmp_path / "a"), scale=SCALE, ops=OPS)
    second = run_chaos("columnar", seed=SEED + 1, fault_seed=FAULT_SEED + 1,
                      data_dir=str(tmp_path / "b"), scale=SCALE, ops=OPS)
    assert first.ok and second.ok, (first.describe(), second.describe())
    assert first.armed == second.armed
    assert first.fired == second.fired
    assert (first.ops_run, first.retries, first.recoveries) == \
        (second.ops_run, second.retries, second.recoveries)
