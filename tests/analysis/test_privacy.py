"""Tests for exposure metrics, attacker models and the forensic scanner."""

import pytest

from repro.core.clock import DAY, HOUR, MINUTE
from repro.core.lcp import NEVER, AttributeLCP
from repro.privacy.attack import (
    capture_fraction_analytic,
    cumulative_detection,
    simulate_periodic_attack,
    simulate_snapshot_attack,
    snapshots_needed,
    sweep_attack_periods,
    tuples_accurate_at,
)
from repro.privacy.exposure import (
    ExposureTimeline,
    accurate_lifetime_of_policy,
    engine_snapshot,
    exposure_volume_analytic,
    level_exposure_profile,
    retention_vs_degradation_ratio,
    snapshot_from_histogram,
    steady_state_exposure,
)
from repro.privacy.forensic import scan_channels, scan_image

from ..conftest import build_engine


class TestExposureSnapshots:
    def test_snapshot_from_histogram_cumulates(self):
        snapshot = snapshot_from_histogram(10.0, {0: 5, 1: 3, 3: 2})
        assert snapshot.total_rows == 10
        assert snapshot.exposed(0) == 5
        assert snapshot.exposed(1) == 8
        assert snapshot.exposed(2) == 8
        assert snapshot.exposed(3) == 10
        assert snapshot.exposed_fraction(0) == 0.5

    def test_empty_histogram(self):
        snapshot = snapshot_from_histogram(0.0, {})
        assert snapshot.total_rows == 0
        assert snapshot.exposed_fraction(0) == 0.0

    def test_engine_snapshot_tracks_degradation(self):
        db = build_engine()
        db.execute("INSERT INTO person (id, location) VALUES (1, '1 Main Street, Paris')")
        db.execute("INSERT INTO person (id, location) VALUES (2, '2 Station Road, Lyon')")
        before = engine_snapshot(db, "person", "location")
        assert before.exposed(0) == 2
        db.advance_time(hours=2)
        after = engine_snapshot(db, "person", "location")
        assert after.exposed(0) == 0
        assert after.exposed(1) == 2

    def test_timeline_volume_trapezoid(self):
        timeline = ExposureTimeline(snapshots=[
            snapshot_from_histogram(0.0, {0: 10}),
            snapshot_from_histogram(10.0, {0: 10}),
            snapshot_from_histogram(20.0, {0: 0}),
        ])
        assert timeline.volume(0) == pytest.approx(10 * 10 + 10 * 5)
        assert timeline.peak(0) == 10
        assert timeline.times() == [0.0, 10.0, 20.0]

    def test_single_snapshot_volume_is_zero(self):
        timeline = ExposureTimeline(snapshots=[snapshot_from_histogram(0.0, {0: 4})])
        assert timeline.volume() == 0.0


class TestAnalyticExposure:
    def test_accurate_lifetime_is_first_delay(self, location_lcp):
        assert accurate_lifetime_of_policy(location_lcp) == HOUR

    def test_event_first_transition_never_expires(self, location_tree):
        lcp = AttributeLCP(location_tree, states=[0, 4],
                           transitions=[{"event": "x"}])
        assert accurate_lifetime_of_policy(lcp) == NEVER
        assert steady_state_exposure(1.0, NEVER) == float("inf")

    def test_steady_state_little_law(self):
        assert steady_state_exposure(arrival_rate=2.0, accurate_lifetime=30.0) == 60.0
        with pytest.raises(Exception):
            steady_state_exposure(-1.0, 10.0)

    def test_exposure_volume(self):
        assert exposure_volume_analytic(100, HOUR) == 100 * HOUR

    def test_retention_ratio(self, location_lcp):
        assert retention_vs_degradation_ratio(DAY, location_lcp) == pytest.approx(24.0)

    def test_level_profile_staircase(self, location_lcp):
        profile = level_exposure_profile(location_lcp)
        assert [entry["level_name"] for entry in profile] == [
            "address", "city", "region", "country", "suppressed"]
        assert profile[0]["entered_at"] == 0.0
        assert profile[0]["residence"] == HOUR
        assert profile[-1]["residence"] == NEVER


class TestAttackModels:
    def test_tuples_accurate_at(self):
        inserts = [0.0, 100.0, 200.0]
        assert tuples_accurate_at(inserts, accurate_lifetime=50.0, when=120.0) == [1]
        assert tuples_accurate_at(inserts, accurate_lifetime=500.0, when=120.0) == [0, 1]

    def test_snapshot_attack_union(self):
        inserts = [float(i * 100) for i in range(10)]
        outcome = simulate_snapshot_attack(inserts, accurate_lifetime=100.0,
                                           attack_times=[50.0, 450.0],
                                           detection_per_snapshot=0.5)
        assert outcome.captured_accurate == 2
        assert outcome.snapshots_taken == 2
        assert outcome.detection_probability == pytest.approx(0.75)

    def test_periodic_attack_faster_than_step_captures_everything(self):
        inserts = [float(i * 60) for i in range(100)]
        outcome = simulate_periodic_attack(inserts, accurate_lifetime=HOUR,
                                           period=30 * MINUTE, horizon=100 * 60 + HOUR)
        assert outcome.capture_fraction == 1.0

    def test_periodic_attack_slower_than_step_misses_data(self):
        inserts = [float(i * 60) for i in range(1000)]
        outcome = simulate_periodic_attack(inserts, accurate_lifetime=10 * MINUTE,
                                           period=HOUR, horizon=1000 * 60)
        assert outcome.capture_fraction < 0.5

    def test_capture_fraction_analytic_bounds(self):
        assert capture_fraction_analytic(HOUR, 30 * MINUTE) == 1.0
        assert capture_fraction_analytic(30 * MINUTE, HOUR) == 0.5
        assert capture_fraction_analytic(HOUR, 0) == 1.0

    def test_detection_grows_with_snapshots(self):
        few = cumulative_detection(0.01, snapshots_needed(DAY, HOUR))
        many = cumulative_detection(0.01, snapshots_needed(DAY, MINUTE))
        assert many > few
        assert 0.0 <= few <= many <= 1.0

    def test_sweep_attack_periods_shape(self):
        inserts = [float(i * 30) for i in range(200)]
        points = sweep_attack_periods(inserts, accurate_lifetime=HOUR,
                                      periods=[10 * MINUTE, HOUR, 6 * HOUR],
                                      horizon=200 * 30)
        captures = [point.capture_fraction for point in points]
        detections = [point.detection_probability for point in points]
        # Faster attacks capture more but are detected more.
        assert captures == sorted(captures, reverse=True)
        assert detections == sorted(detections, reverse=True)


class TestForensicScanner:
    def test_scan_image_finds_text_and_numbers(self):
        import struct
        image = b"noise" + "21 rue X, Paris".encode() + struct.pack("<q", 4242) + b"tail"
        report = scan_image(image, ["21 rue X, Paris", 4242, "absent"])
        assert not report.clean
        assert set(report.residual_values) == {"21 rue X, Paris", 4242}

    def test_scan_channels_merges(self):
        report = scan_channels({"heap": b"hello Paris", "wal": b"nothing"}, ["Paris"])
        assert [finding.channel for finding in report.findings] == ["heap"]
        assert "heap" in report.summary()

    def test_clean_report(self):
        report = scan_image(b"only noise", ["Paris"])
        assert report.clean
        assert "clean" in report.summary()

    def test_multiple_occurrences_reported(self):
        report = scan_image(b"Paris...Paris", ["Paris"])
        assert len(report.findings) == 2
        assert report.findings_in("image")
