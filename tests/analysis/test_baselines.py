"""Tests for the baseline comparators (traditional, retention, k-anonymity)."""

import pytest

from repro.baselines import KAnonymizer, LimitedRetentionStore, TraditionalStore
from repro.core.clock import DAY, HOUR
from repro.core.domains import build_location_tree, build_salary_ranges
from repro.core.errors import ConfigurationError
from repro.core.values import SUPPRESSED


class TestTraditionalStore:
    def test_rows_kept_forever(self):
        store = TraditionalStore()
        store.insert({"location": "Paris"}, now=0.0)
        store.insert({"location": "Lyon"}, now=10.0)
        store.tick(now=10 * 365 * DAY)
        assert store.row_count == 2
        assert len(store.accurate_rows(now=10 * 365 * DAY)) == 2

    def test_explicit_delete(self):
        store = TraditionalStore()
        key = store.insert({"location": "Paris"}, now=0.0)
        assert store.delete(key)
        assert not store.delete(key)
        assert store.row_count == 0

    def test_select_by_predicate(self):
        store = TraditionalStore()
        store.insert({"location": "Paris"}, now=0.0)
        store.insert({"location": "Lyon"}, now=0.0)
        rows = store.select(lambda values: values["location"] == "Paris")
        assert len(rows) == 1

    def test_visible_values(self):
        store = TraditionalStore()
        store.insert({"location": "Paris"}, now=0.0)
        assert store.visible_values("location") == ["Paris"]


class TestLimitedRetentionStore:
    def test_rows_expire_after_limit(self):
        store = LimitedRetentionStore(retention_limit=DAY)
        store.insert({"location": "Paris"}, now=0.0)
        store.insert({"location": "Lyon"}, now=HOUR)
        assert store.tick(now=DAY) == 1
        assert store.row_count == 1
        assert store.tick(now=DAY + HOUR) == 1
        assert store.expired_count == 2

    def test_rows_accessor_applies_expiry(self):
        store = LimitedRetentionStore(retention_limit=DAY)
        store.insert({"location": "Paris"}, now=0.0)
        assert len(store.rows(now=2 * DAY)) == 0

    def test_all_or_nothing_accuracy(self):
        store = LimitedRetentionStore(retention_limit=DAY)
        store.insert({"location": "Paris"}, now=0.0)
        assert len(store.accurate_rows(now=HOUR)) == 1
        assert len(store.accurate_rows(now=2 * DAY)) == 0

    def test_accurate_lifetime_is_whole_window(self):
        assert LimitedRetentionStore(retention_limit=DAY).accurate_lifetime() == DAY

    def test_nonpositive_limit_rejected(self):
        with pytest.raises(ConfigurationError):
            LimitedRetentionStore(retention_limit=0)


class TestKAnonymizer:
    @pytest.fixture
    def anonymizer(self):
        return KAnonymizer({"location": build_location_tree(),
                            "salary": build_salary_ranges()},
                           identifier_columns=["name"])

    def make_rows(self, tree, per_city=3):
        rows = []
        for city in list(tree.values_at_level(1))[:4]:
            for index, address in enumerate(
                    [a for a in tree.leaves() if a.endswith(city)][:per_city]):
                rows.append({"name": f"user-{city}-{index}", "location": address,
                             "salary": 2000 + 17 * index})
        return rows

    def test_k1_keeps_accurate_values(self, anonymizer):
        tree = build_location_tree()
        rows = self.make_rows(tree)
        result = anonymizer.anonymize(rows, k=1)
        assert result.satisfied
        assert result.levels == {"location": 0, "salary": 0}

    def test_k_anonymity_generalizes_until_classes_large_enough(self, anonymizer):
        tree = build_location_tree()
        rows = self.make_rows(tree)
        result = anonymizer.anonymize(rows, k=3)
        assert result.satisfied
        assert result.smallest_class >= 3
        # Identifiers are suppressed outright.
        assert all(row["name"] is SUPPRESSED for row in result.rows)
        # At least one quasi-identifier had to be generalized.
        assert any(level > 0 for level in result.levels.values())

    def test_unsatisfiable_k_reports_failure(self, anonymizer):
        tree = build_location_tree()
        rows = self.make_rows(tree)[:2]
        result = anonymizer.anonymize(rows, k=5)
        assert not result.satisfied
        # Everything ended fully suppressed while trying.
        assert result.levels["location"] == tree.max_level

    def test_information_loss_monotone_in_k(self, anonymizer):
        tree = build_location_tree()
        rows = self.make_rows(tree)
        loss_small_k = anonymizer.information_loss(anonymizer.anonymize(rows, k=2).levels)
        loss_large_k = anonymizer.information_loss(anonymizer.anonymize(rows, k=6).levels)
        assert 0.0 <= loss_small_k <= loss_large_k <= 1.0

    def test_empty_input(self, anonymizer):
        result = anonymizer.anonymize([], k=3)
        assert result.satisfied and result.rows == []

    def test_invalid_k_rejected(self, anonymizer):
        with pytest.raises(ConfigurationError):
            anonymizer.anonymize([{"location": "Paris"}], k=0)

    def test_requires_schemes(self):
        with pytest.raises(ConfigurationError):
            KAnonymizer({})
