"""Tests for the synthetic workload generators and query mixes."""

import pytest

from repro.core.domains import build_location_tree
from repro.core.errors import ConfigurationError
from repro.query.parser import parse
from repro.workloads import (
    AdmissionGenerator,
    Distributions,
    LocationTraceGenerator,
    OLAPMix,
    OLTPMix,
    SearchLogGenerator,
    admissions_table_sql,
    person_table_sql,
    searchlog_table_sql,
    standard_purposes_sql,
)


class TestDistributions:
    def test_determinism_with_same_seed(self):
        a, b = Distributions(3), Distributions(3)
        assert [a.uniform_int(0, 100) for _ in range(10)] == \
               [b.uniform_int(0, 100) for _ in range(10)]

    def test_zipf_weights_normalized_and_decreasing(self):
        weights = Distributions().zipf_weights(10, skew=1.2)
        assert sum(weights) == pytest.approx(1.0)
        assert weights == sorted(weights, reverse=True)

    def test_zipf_choice_prefers_head(self):
        dist = Distributions(1)
        items = list(range(50))
        samples = [dist.zipf_choice(items, skew=1.5) for _ in range(500)]
        assert samples.count(0) > samples.count(49)

    def test_poisson_arrivals_within_horizon(self):
        arrivals = Distributions(2).poisson_arrivals(rate=1.0, horizon=100.0)
        assert all(0 <= when <= 100.0 for when in arrivals)
        assert arrivals == sorted(arrivals)
        assert 50 <= len(arrivals) <= 200

    def test_regular_arrivals(self):
        assert Distributions().regular_arrivals(3, 10.0, start=5.0) == [5.0, 15.0, 25.0]

    def test_gaussian_int_clamped(self):
        dist = Distributions(4)
        values = [dist.gaussian_int(50, 100, minimum=0, maximum=60) for _ in range(100)]
        assert all(0 <= value <= 60 for value in values)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            Distributions().uniform_choice([])
        with pytest.raises(ConfigurationError):
            Distributions().zipf_weights(0)
        with pytest.raises(ConfigurationError):
            Distributions().exponential(0)


class TestLocationTraces:
    def test_events_are_deterministic(self):
        a = LocationTraceGenerator(num_users=5, seed=9).events(10)
        b = LocationTraceGenerator(num_users=5, seed=9).events(10)
        assert [(e.user_id, e.address) for e in a] == [(e.user_id, e.address) for e in b]

    def test_events_are_consistent_with_the_tree(self):
        tree = build_location_tree()
        for event in LocationTraceGenerator(num_users=5, seed=1).events(30):
            assert tree.generalize(event.address, 1) == event.city
            assert tree.generalize(event.city, 3, from_level=1) == event.country

    def test_timestamps_follow_interval(self):
        events = LocationTraceGenerator(seed=1).events(5, interval=60.0, start=100.0)
        assert [e.timestamp for e in events] == [100.0, 160.0, 220.0, 280.0, 340.0]

    def test_poisson_events(self):
        events = LocationTraceGenerator(seed=1).poisson_events(rate=0.1, horizon=1000.0)
        assert all(0 <= e.timestamp <= 1000.0 for e in events)

    def test_as_row_matches_person_table(self):
        event = LocationTraceGenerator(seed=1).event_at(0.0)
        row = event.as_row()
        assert set(row) == {"id", "user_id", "name", "location", "salary", "activity"}

    def test_sample_helpers(self):
        generator = LocationTraceGenerator(seed=1)
        tree = build_location_tree()
        assert generator.sample_city() in tree.values_at_level(1)
        assert generator.sample_country() in tree.values_at_level(3)
        assert 1 <= generator.sample_user_id() <= generator.num_users
        low, high = generator.sample_salary_range().split("-")
        assert int(high) - int(low) == 1000


class TestOtherGenerators:
    def test_search_events_consistent_with_tree(self):
        generator = SearchLogGenerator(seed=2)
        for event in generator.events(20):
            assert generator.tree.generalize(event.query, 1) == event.topic
            assert generator.tree.generalize(event.query, 2) == event.category

    def test_admissions_consistent_with_tree(self):
        generator = AdmissionGenerator(seed=2)
        for event in generator.events(20):
            assert generator.tree.generalize(event.diagnosis, 2) == event.specialty
            assert 1 <= event.duration_days <= 60

    def test_table_sql_statements_parse(self):
        for sql in (person_table_sql(), person_table_sql(salary_policy="salary_lcp"),
                    searchlog_table_sql(), admissions_table_sql()):
            parse(sql)
        for sql in standard_purposes_sql():
            parse(sql)


class TestQueryMixes:
    def test_oltp_queries_parse_and_cover_kinds(self):
        generator = LocationTraceGenerator(seed=3)
        mix = OLTPMix(generator, seed=3)
        queries = mix.queries(50)
        for spec in queries:
            parse(spec.sql)
        assert {spec.kind for spec in queries} >= {"point_user", "point_city"}

    def test_olap_queries_parse_and_cover_kinds(self):
        generator = LocationTraceGenerator(seed=3)
        mix = OLAPMix(generator, seed=3)
        queries = mix.queries(50)
        for spec in queries:
            parse(spec.sql)
        assert {spec.kind for spec in queries} >= {"events_by_country", "country_count"}

    def test_mix_is_deterministic(self):
        generator = LocationTraceGenerator(seed=3)
        first = [spec.sql for spec in OLTPMix(generator, seed=7).queries(10)]
        generator2 = LocationTraceGenerator(seed=3)
        second = [spec.sql for spec in OLTPMix(generator2, seed=7).queries(10)]
        assert first == second
