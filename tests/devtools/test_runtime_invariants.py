"""The runtime half of devtools: lock-order tracking, the documented lock
hierarchy, observe-only 2PL inversion recording, and engine-thread
confinement — provoked deliberately, end to end through a live server."""

import threading

import pytest

from repro import InstantDB
from repro.core.errors import DeadlockError
from repro.devtools import invariants
from repro.devtools.invariants import InvariantViolation, TrackedLock
from repro.server import ServerThread
from repro.txn.locks import LockManager, LockMode

from ..conftest import build_engine


@pytest.fixture(autouse=True)
def armed():
    """Arm the checks for each test; restore the ambient state afterwards."""
    was_enabled = invariants.enabled()
    invariants.reset()
    invariants.enable()
    yield
    invariants.reset()
    if not was_enabled:
        invariants.disable()


class TestLockOrderTracking:
    def test_opposite_order_acquisition_raises(self):
        a, b = TrackedLock("alpha"), TrackedLock("beta")
        with a:
            with b:
                pass
        # Same locks, opposite order: the a->b and b->a edges close a cycle,
        # reported at release time even though no deadlock actually occurred.
        with pytest.raises(InvariantViolation, match="lock-order inversion"):
            with b:
                with a:
                    pass
        assert any("alpha" in v and "beta" in v for v in invariants.violations)

    def test_consistent_order_is_clean(self):
        a, b = TrackedLock("alpha"), TrackedLock("beta")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert invariants.violations == []

    def test_reentrant_acquisition_is_not_a_cycle(self):
        a = TrackedLock("alpha")
        with a:
            with a:
                pass
        assert invariants.violations == []

    def test_cycle_reported_once(self):
        a, b = TrackedLock("alpha"), TrackedLock("beta")
        with a:
            with b:
                pass
        for _ in range(2):
            try:
                with b:
                    with a:
                        pass
            except InvariantViolation:
                pass
        assert len(invariants.violations) == 1

    def test_three_lock_cycle_detected(self):
        a, b, c = TrackedLock("l.a"), TrackedLock("l.b"), TrackedLock("l.c")
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with pytest.raises(InvariantViolation):
            with c:
                with a:
                    pass

    def test_disabled_checks_do_not_raise(self):
        invariants.disable()
        a, b = TrackedLock("alpha"), TrackedLock("beta")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        assert invariants.violations == []


class TestLockHierarchy:
    def test_rank_inversion_raises_at_acquire(self, monkeypatch):
        monkeypatch.setattr(invariants, "LOCK_HIERARCHY", ("outer", "inner"))
        outer, inner = TrackedLock("outer"), TrackedLock("inner")
        with pytest.raises(InvariantViolation, match="hierarchy violation"):
            with inner:
                with outer:
                    pass

    def test_documented_order_is_clean(self, monkeypatch):
        monkeypatch.setattr(invariants, "LOCK_HIERARCHY", ("outer", "inner"))
        outer, inner = TrackedLock("outer"), TrackedLock("inner")
        with outer:
            with inner:
                pass
        assert invariants.violations == []

    def test_unranked_locks_skip_the_rank_check(self, monkeypatch):
        monkeypatch.setattr(invariants, "LOCK_HIERARCHY", ("outer",))
        outer, free = TrackedLock("outer"), TrackedLock("free")
        with free:
            with outer:              # "free" has no rank: order graph only
                pass
        assert invariants.violations == []


class TestObserved2PL:
    def test_2pl_inversion_recorded_not_raised(self):
        manager = LockManager()
        assert manager.acquire(1, "A", LockMode.EXCLUSIVE)
        assert manager.acquire(2, "B", LockMode.EXCLUSIVE)
        assert not manager.acquire(1, "B", LockMode.EXCLUSIVE)   # waits
        with pytest.raises(DeadlockError):
            manager.acquire(2, "A", LockMode.EXCLUSIVE)
        # Release closes the observation window; the inversion lands in the
        # observe-only channel (2PL cycles are the deadlock detector's job).
        manager.release_all(1)
        manager.release_all(2)
        assert len(invariants.observed_inversions) == 1
        assert "opposite orders" in invariants.observed_inversions[0]
        assert invariants.violations == []

    def test_consistent_2pl_order_records_nothing(self):
        manager = LockManager()
        for txn_id in (1, 2):
            assert manager.acquire(txn_id, "A", LockMode.SHARED)
            assert manager.acquire(txn_id, "B", LockMode.SHARED)
        manager.release_all(1)
        manager.release_all(2)
        assert invariants.observed_inversions == []

    def test_row_resources_keyed_by_table_and_row(self):
        manager = LockManager()
        assert manager.acquire(1, ("trace", 7), LockMode.EXCLUSIVE)
        assert manager.acquire(2, "trace", LockMode.SHARED) is False or True
        manager.release_all(1)
        manager.release_all(2)
        # Tuple resources must not collide with unrelated string names.
        assert invariants.observed_inversions == []

    def test_engine_deadlock_tests_still_pass_under_observation(self):
        # The engine's own deadlock resolution is untouched by observation:
        # the victim aborts, the survivor proceeds.
        db = InstantDB()
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        db.execute("CREATE TABLE u (id INT PRIMARY KEY, v TEXT)")
        t1, t2 = db.begin(), db.begin()
        db.execute("INSERT INTO t VALUES (1, 'x')", txn=t1)
        db.execute("INSERT INTO u VALUES (1, 'y')", txn=t2)
        db.rollback(t1)
        db.rollback(t2)
        assert invariants.violations == []


class TestThreadConfinement:
    def test_foreign_thread_entry_raises(self):
        db = InstantDB()
        invariants.register_engine_thread(db, ident=-1)   # no thread has -1
        with pytest.raises(InvariantViolation, match="executor thread"):
            db.begin()

    def test_pinned_thread_entry_is_allowed(self):
        db = InstantDB()
        invariants.register_engine_thread(db)             # this very thread
        db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        txn = db.begin()
        db.rollback(txn)
        assert invariants.violations == []

    def test_unregistered_engine_is_unconfined(self):
        pinned, free = InstantDB(), InstantDB()
        invariants.register_engine_thread(pinned, ident=-1)
        free.execute("CREATE TABLE t (id INT PRIMARY KEY)")  # not pinned
        assert invariants.violations == []

    def test_unregister_releases_the_pin(self):
        db = InstantDB()
        invariants.register_engine_thread(db, ident=-1)
        invariants.unregister_engine_thread(db)
        db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        assert invariants.violations == []

    def test_violation_names_thread_and_remedy(self):
        db = InstantDB()
        invariants.register_engine_thread(db, ident=-1)
        with pytest.raises(InvariantViolation) as excinfo:
            db.begin()
        message = str(excinfo.value)
        assert threading.current_thread().name in message
        assert "run_on_engine" in message


class TestServedEngineConfinement:
    def test_direct_call_into_served_engine_raises(self):
        engine = build_engine()
        server = ServerThread(engine).start()
        try:
            with pytest.raises(InvariantViolation, match="executor thread"):
                engine.execute("SELECT id FROM person")
        finally:
            server.stop(drain=False)

    def test_submit_routes_through_the_executor(self):
        engine = build_engine()
        server = ServerThread(engine).start()
        try:
            result = server.submit(engine.execute, "SELECT id FROM person")
            assert result.rows == []
            server.submit(engine.advance_time, 60.0)
        finally:
            server.stop(drain=False)
        assert invariants.violations == []

    def test_stop_unpins_the_engine(self):
        engine = build_engine()
        server = ServerThread(engine).start()
        server.stop(drain=False)
        result = engine.execute("SELECT id FROM person")
        assert result.rows == []
        assert invariants.violations == []
