"""The reprolint CLI surface: suppression comments, JSON output, exit codes,
and the self-lint gate (the shipped tree must be clean)."""

import json
import os
import textwrap

import repro
from repro.devtools import lint as lint_mod


def write(tmp_path, relative, source):
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


DIRTY = """\
    def f(value):
        return value == SUPPRESSED
"""


class TestSuppression:
    def test_disable_comment_suppresses_on_its_line(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def f(value):
                return value == SUPPRESSED  # reprolint: disable=sentinel-identity
        """)
        assert lint_mod.run([str(tmp_path)]) == []

    def test_disable_all_suppresses_every_rule(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def f(value):
                return value == SUPPRESSED  # reprolint: disable=all
        """)
        assert lint_mod.run([str(tmp_path)]) == []

    def test_disable_list_with_reason_suffix(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def f(lock, value):
                lock.acquire()  # reprolint: disable=lock-discipline,sentinel-identity -- ffi handoff
        """)
        assert lint_mod.run([str(tmp_path)]) == []

    def test_wrong_rule_name_does_not_suppress(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def f(value):
                return value == SUPPRESSED  # reprolint: disable=lock-discipline
        """)
        assert len(lint_mod.run([str(tmp_path)])) == 1

    def test_comment_on_other_line_does_not_suppress(self, tmp_path):
        write(tmp_path, "mod.py", """\
            # reprolint: disable=sentinel-identity
            def f(value):
                return value == SUPPRESSED
        """)
        assert len(lint_mod.run([str(tmp_path)])) == 1


class TestOutputFormats:
    def test_json_shape(self, tmp_path, capsys):
        write(tmp_path, "mod.py", DIRTY)
        code = lint_mod.main([str(tmp_path), "--format=json"])
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == 1
        assert report["tool"] == "reprolint"
        assert report["paths"] == [str(tmp_path)]
        assert report["count"] == len(report["findings"]) == 1
        finding = report["findings"][0]
        assert set(finding) == {"rule", "path", "line", "col", "message"}
        assert finding["rule"] == "sentinel-identity"
        assert finding["line"] == 2
        assert "reprolint" not in finding["message"]  # message is the defect

    def test_json_clean_report(self, tmp_path, capsys):
        write(tmp_path, "mod.py", "x = 1\n")
        assert lint_mod.main([str(tmp_path), "--format=json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["count"] == 0 and report["findings"] == []

    def test_human_format_lists_findings_and_summary(self, tmp_path, capsys):
        write(tmp_path, "mod.py", DIRTY)
        assert lint_mod.main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "mod.py:2:" in out
        assert "[sentinel-identity]" in out
        assert "1 finding(s)" in out

    def test_human_clean_summary(self, tmp_path, capsys):
        write(tmp_path, "mod.py", "x = 1\n")
        assert lint_mod.main([str(tmp_path)]) == 0
        assert "reprolint: clean" in capsys.readouterr().out


class TestCliBehavior:
    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        write(tmp_path, "mod.py", "x = 1\n")
        assert lint_mod.main([str(tmp_path), "--rules=no-such-rule"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_rules_subset_runs_only_selected(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def f(lock, value):
                lock.acquire()
                return value == SUPPRESSED
        """)
        findings = lint_mod.run([str(tmp_path)], rule_names=["lock-discipline"])
        assert [f.rule for f in findings] == ["lock-discipline"]

    def test_list_rules(self, capsys):
        assert lint_mod.main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("sentinel-identity", "executor-confinement",
                     "lock-discipline", "no-swallowed-abort",
                     "wal-exhaustive", "frame-tag-exhaustive"):
            assert rule in out

    def test_syntax_error_reported_as_parse_error(self, tmp_path):
        write(tmp_path, "broken.py", "def f(:\n")
        findings = lint_mod.run([str(tmp_path)])
        assert len(findings) == 1
        assert findings[0].rule == "parse-error"

    def test_explicit_file_argument(self, tmp_path):
        path = write(tmp_path, "mod.py", DIRTY)
        assert len(lint_mod.run([str(path)])) == 1

    def test_findings_sorted_by_path_then_line(self, tmp_path):
        write(tmp_path, "a.py", """\
            def f(value):
                if value == SUPPRESSED:
                    return 1
                return value == REMOVED
        """)
        write(tmp_path, "b.py", DIRTY)
        findings = lint_mod.run([str(tmp_path)])
        keys = [(f.path, f.line) for f in findings]
        assert keys == sorted(keys)


class TestSelfLint:
    def test_shipped_tree_is_clean(self):
        """The tier-1 gate: reprolint over the installed repro package."""
        package_dir = os.path.dirname(repro.__file__)
        findings = lint_mod.run([package_dir])
        assert findings == [], "\n".join(f.format() for f in findings)
