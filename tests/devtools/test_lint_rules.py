"""Per-rule reprolint fixtures: each rule gets code it must flag and code it
must leave alone.  Fixture trees are written under tmp_path with the anchor
path suffixes the rules key on (``server/``, ``storage/wal.py``, ...)."""

import textwrap

from repro.devtools import lint as lint_mod


def write(tmp_path, relative, source):
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def run_rule(tmp_path, rule):
    return lint_mod.run([str(tmp_path)], rule_names=[rule])


class TestSentinelIdentity:
    def test_equality_comparison_flagged(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def f(value):
                if value == SUPPRESSED:
                    return None
                return value != REMOVED
        """)
        findings = run_rule(tmp_path, "sentinel-identity")
        assert len(findings) == 2
        assert all(f.rule == "sentinel-identity" for f in findings)
        assert "SUPPRESSED" in findings[0].message

    def test_membership_tests_flagged(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def f(value):
                return value in (SUPPRESSED, NULL) or value in SENTINELS
        """)
        assert len(run_rule(tmp_path, "sentinel-identity")) == 2

    def test_identity_comparison_clean(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def f(value):
                return value is SUPPRESSED or value is not REMOVED
        """)
        assert run_rule(tmp_path, "sentinel-identity") == []

    def test_values_module_is_exempt(self, tmp_path):
        write(tmp_path, "core/values.py", """\
            def __eq__(self, other):
                return other == SUPPRESSED
        """)
        assert run_rule(tmp_path, "sentinel-identity") == []

    def test_attribute_sentinels_flagged(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def f(row):
                return row.value == values.SUPPRESSED
        """)
        assert len(run_rule(tmp_path, "sentinel-identity")) == 1


class TestExecutorConfinement:
    def test_direct_engine_call_in_async_def_flagged(self, tmp_path):
        write(tmp_path, "server/handlers.py", """\
            async def handle(self, frame):
                return self.engine.execute(frame.sql)
        """)
        findings = run_rule(tmp_path, "executor-confinement")
        assert len(findings) == 1
        assert "run_on_engine" in findings[0].message

    def test_session_method_call_flagged(self, tmp_path):
        write(tmp_path, "server/handlers.py", """\
            async def handle(self, session):
                session.commit()
        """)
        assert len(run_rule(tmp_path, "executor-confinement")) == 1

    def test_engine_construction_flagged(self, tmp_path):
        write(tmp_path, "server/boot.py", """\
            async def boot(path):
                return InstantDB(path)
        """)
        assert len(run_rule(tmp_path, "executor-confinement")) == 1

    def test_bound_method_passed_to_executor_clean(self, tmp_path):
        write(tmp_path, "server/handlers.py", """\
            async def handle(self, session):
                return await self.run_on_engine(session.execute, "SELECT 1")
        """)
        assert run_rule(tmp_path, "executor-confinement") == []

    def test_sync_def_and_nested_def_clean(self, tmp_path):
        write(tmp_path, "server/handlers.py", """\
            def sync_path(self):
                return self.engine.execute("SELECT 1")

            async def handle(self):
                def on_executor():
                    return self.engine.execute("SELECT 1")
                return await self.run_on_engine(on_executor)
        """)
        assert run_rule(tmp_path, "executor-confinement") == []

    def test_outside_server_package_ignored(self, tmp_path):
        write(tmp_path, "client/driver.py", """\
            async def handle(self):
                return self.engine.execute("SELECT 1")
        """)
        assert run_rule(tmp_path, "executor-confinement") == []


class TestLockDiscipline:
    def test_bare_acquire_release_flagged(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def f(lock):
                lock.acquire()
                lock.release()
        """)
        findings = run_rule(tmp_path, "lock-discipline")
        assert len(findings) == 2
        assert "with" in findings[0].message

    def test_2pl_manager_acquire_with_args_clean(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def f(manager, txn_id, mode):
                return manager.acquire(txn_id, "trace", mode)
        """)
        assert run_rule(tmp_path, "lock-discipline") == []

    def test_raw_threading_lock_flagged(self, tmp_path):
        write(tmp_path, "mod.py", """\
            import threading
            guard = threading.Lock()
        """)
        findings = run_rule(tmp_path, "lock-discipline")
        assert len(findings) == 1
        assert "TrackedLock" in findings[0].message

    def test_raw_lock_allowed_inside_devtools(self, tmp_path):
        write(tmp_path, "devtools/internals.py", """\
            import threading
            guard = threading.RLock()
        """)
        assert run_rule(tmp_path, "lock-discipline") == []

    def test_unknown_tracked_lock_name_flagged(self, tmp_path):
        write(tmp_path, "mod.py", """\
            from repro.devtools.invariants import TrackedLock
            guard = TrackedLock("made.up.name")
        """)
        findings = run_rule(tmp_path, "lock-discipline")
        assert len(findings) == 1
        assert "hierarchy" in findings[0].message

    def test_documented_lock_name_clean(self, tmp_path):
        write(tmp_path, "mod.py", """\
            from repro.devtools.invariants import TrackedLock
            guard = TrackedLock("server.sessions")

            def f():
                with guard:
                    return 1
        """)
        assert run_rule(tmp_path, "lock-discipline") == []


class TestNoSwallowedAbort:
    def test_pass_handler_flagged(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def f(engine):
                try:
                    engine.commit()
                except TransactionAborted:
                    pass
        """)
        findings = run_rule(tmp_path, "no-swallowed-abort")
        assert len(findings) == 1
        assert "TransactionAborted" in findings[0].message

    def test_bare_except_flagged(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def f(engine):
                try:
                    engine.commit()
                except:
                    return None
        """)
        assert len(run_rule(tmp_path, "no-swallowed-abort")) == 1

    def test_reraise_clean(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def f(engine):
                try:
                    engine.commit()
                except TransactionAborted:
                    engine.cleanup()
                    raise
        """)
        assert run_rule(tmp_path, "no-swallowed-abort") == []

    def test_bound_name_used_clean(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def f(engine, log):
                try:
                    engine.commit()
                except OperationalError as error:
                    log.warning("commit failed: %s", error)
        """)
        assert run_rule(tmp_path, "no-swallowed-abort") == []

    def test_real_work_in_body_clean(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def f(engine, conn):
                try:
                    engine.commit()
                except DeadlockError:
                    conn.rollback()
        """)
        assert run_rule(tmp_path, "no-swallowed-abort") == []

    def test_unrelated_exception_ignored(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def f(mapping, key):
                try:
                    return mapping[key]
                except KeyError:
                    pass
        """)
        assert run_rule(tmp_path, "no-swallowed-abort") == []


class TestNoSwallowedIOError:
    def test_swallowed_oserror_around_io_flagged(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def f(handle):
                try:
                    handle.fsync()
                except OSError:
                    pass
        """)
        findings = run_rule(tmp_path, "no-swallowed-io-error")
        assert len(findings) == 1
        assert "OSError" in findings[0].message

    def test_swallowed_durability_error_flagged_anywhere(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def f(engine):
                try:
                    engine.commit_buffers()
                except DurabilityError:
                    return None
        """)
        assert len(run_rule(tmp_path, "no-swallowed-io-error")) == 1

    def test_swallowed_connection_error_around_socket_flagged(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def f(sock, data):
                try:
                    sock.sendall(data)
                except ConnectionResetError:
                    pass
        """)
        assert len(run_rule(tmp_path, "no-swallowed-io-error")) == 1

    def test_oserror_without_io_in_body_clean(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def f(value):
                try:
                    return int(value)
                except OSError:
                    pass
        """)
        assert run_rule(tmp_path, "no-swallowed-io-error") == []

    def test_reraise_clean(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def f(handle):
                try:
                    handle.flush()
                except OSError as exc:
                    raise DurabilityError(str(exc)) from exc
        """)
        assert run_rule(tmp_path, "no-swallowed-io-error") == []

    def test_bound_name_used_clean(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def f(handle, log):
                try:
                    handle.flush()
                except OSError as error:
                    log.warning("flush failed: %s", error)
        """)
        assert run_rule(tmp_path, "no-swallowed-io-error") == []

    def test_suppression_comment_clean(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def f(sock):
                try:
                    sock.close()
                except OSError:  # reprolint: disable=no-swallowed-io-error -- best-effort close
                    pass
        """)
        assert run_rule(tmp_path, "no-swallowed-io-error") == []


WAL_FIXTURE = """\
    class LogRecordType:
        BEGIN = "BEGIN"
        COMMIT = "COMMIT"
        INSERT = "INSERT"
        DEGRADE = "DEGRADE"
        SCRUB = "SCRUB"

    _SCRUB_EXEMPT = frozenset({
        LogRecordType.BEGIN,
        LogRecordType.COMMIT,
        LogRecordType.SCRUB,
    })

    _SCRUB_TARGETS = frozenset({
        LogRecordType.INSERT,
        LogRecordType.DEGRADE,
    })
"""

RECOVERY_FIXTURE = """\
    _REPLAY_IGNORED = frozenset({
        LogRecordType.SCRUB,
    })

    def _analysis(record, winners):
        if record.record_type is LogRecordType.BEGIN:
            winners.discard(record.txn_id)
        elif record.record_type is LogRecordType.COMMIT:
            winners.add(record.txn_id)

    def _redo(record, store):
        if record.record_type is LogRecordType.INSERT:
            store.replay_insert(record)
        elif record.record_type is LogRecordType.DEGRADE:
            store.replay_degrade(record)
"""


class TestWalExhaustive:
    def test_consistent_fixture_clean(self, tmp_path):
        write(tmp_path, "storage/wal.py", WAL_FIXTURE)
        write(tmp_path, "txn/recovery.py", RECOVERY_FIXTURE)
        assert run_rule(tmp_path, "wal-exhaustive") == []

    def test_unclassified_record_type_flagged(self, tmp_path):
        write(tmp_path, "storage/wal.py",
              WAL_FIXTURE.replace("        LogRecordType.COMMIT,\n", "", 1))
        write(tmp_path, "txn/recovery.py", RECOVERY_FIXTURE)
        findings = run_rule(tmp_path, "wal-exhaustive")
        assert len(findings) == 1
        assert "COMMIT" in findings[0].message
        assert "scrub" in findings[0].message

    def test_missing_classification_sets_flagged(self, tmp_path):
        source = WAL_FIXTURE.split("_SCRUB_TARGETS")[0]
        write(tmp_path, "storage/wal.py", source)
        findings = run_rule(tmp_path, "wal-exhaustive")
        assert any("_SCRUB_TARGETS" in f.message for f in findings)

    def test_deleting_replay_arm_flagged(self, tmp_path):
        # The acceptance scenario: drop the DEGRADE arm from _redo and the
        # rule must fail the build (scrub targets are redo-always).
        broken = RECOVERY_FIXTURE.replace(
            "        elif record.record_type is LogRecordType.DEGRADE:\n"
            "            store.replay_degrade(record)\n", "")
        write(tmp_path, "storage/wal.py", WAL_FIXTURE)
        write(tmp_path, "txn/recovery.py", broken)
        findings = run_rule(tmp_path, "wal-exhaustive")
        assert findings
        assert any("DEGRADE" in f.message and "_redo" in f.message
                   for f in findings)

    def test_replay_ignored_escape_hatch(self, tmp_path):
        # A record type with no replay arm passes only when listed in
        # _REPLAY_IGNORED (here: SCRUB); removing it from the set must flag.
        broken = RECOVERY_FIXTURE.replace("        LogRecordType.SCRUB,\n", "")
        write(tmp_path, "storage/wal.py", WAL_FIXTURE)
        write(tmp_path, "txn/recovery.py", broken)
        findings = run_rule(tmp_path, "wal-exhaustive")
        assert any("SCRUB" in f.message and "replay arm" in f.message
                   for f in findings)

    def test_real_tree_with_deleted_redo_arm_fails(self, tmp_path):
        # Same scenario against the real sources: renaming every DEGRADE
        # dispatch in recovery.py deletes its replay arm; the rule must fire.
        import repro.storage.wal as wal_module
        import repro.txn.recovery as recovery_module
        real_wal = open(wal_module.__file__, encoding="utf-8").read()
        real_recovery = open(recovery_module.__file__, encoding="utf-8").read()
        write(tmp_path, "storage/wal.py", real_wal)
        write(tmp_path, "txn/recovery.py",
              real_recovery.replace("LogRecordType.DEGRADE",
                                    "LogRecordType.UPDATE"))
        findings = run_rule(tmp_path, "wal-exhaustive")
        assert any("DEGRADE" in f.message for f in findings)

    def test_skips_silently_without_anchor_files(self, tmp_path):
        write(tmp_path, "mod.py", "x = 1\n")
        assert run_rule(tmp_path, "wal-exhaustive") == []


PROTOCOL_FIXTURE = """\
    PROTOCOL_VERSION = 1
    HELLO = 0x01
    QUERY = 0x02
    OK = 0x80

    FRAME_NAMES = {HELLO: "HELLO", QUERY: "QUERY", OK: "OK"}

    def _encode_into(out, value):
        out.append(b"i")
        out.append(b"s")

    def _decode_at(data, offset):
        if data[offset:offset + 1] == b"i":
            return 1
        if data[offset:offset + 1] == b"s":
            return "s"
"""

SERVER_FIXTURE = """\
    from . import protocol

    async def dispatch(frame):
        if frame.kind == protocol.HELLO:
            return protocol.OK
        if frame.kind == protocol.QUERY:
            return protocol.OK
"""

CLIENT_FIXTURE = """\
    from ..server import protocol

    def request(sock):
        sock.send(protocol.HELLO)
        sock.send(protocol.QUERY)
        return protocol.OK
"""


class TestFrameTagExhaustive:
    def test_consistent_fixture_clean(self, tmp_path):
        write(tmp_path, "server/protocol.py", PROTOCOL_FIXTURE)
        write(tmp_path, "server/server.py", SERVER_FIXTURE)
        write(tmp_path, "client/remote.py", CLIENT_FIXTURE)
        assert run_rule(tmp_path, "frame-tag-exhaustive") == []

    def test_frame_missing_from_frame_names(self, tmp_path):
        write(tmp_path, "server/protocol.py",
              PROTOCOL_FIXTURE.replace('QUERY: "QUERY", ', ""))
        findings = run_rule(tmp_path, "frame-tag-exhaustive")
        assert any("FRAME_NAMES" in f.message and "QUERY" in f.message
                   for f in findings)

    def test_frame_unreferenced_by_server_flagged(self, tmp_path):
        write(tmp_path, "server/protocol.py", PROTOCOL_FIXTURE)
        write(tmp_path, "server/server.py",
              SERVER_FIXTURE.replace(
                  "        if frame.kind == protocol.QUERY:\n"
                  "            return protocol.OK\n", ""))
        findings = run_rule(tmp_path, "frame-tag-exhaustive")
        assert len(findings) == 1
        assert "QUERY" in findings[0].message
        assert findings[0].path.endswith("server/server.py")

    def test_frame_unreferenced_by_client_flagged(self, tmp_path):
        write(tmp_path, "server/protocol.py", PROTOCOL_FIXTURE)
        write(tmp_path, "client/remote.py",
              CLIENT_FIXTURE.replace("        sock.send(protocol.QUERY)\n", ""))
        findings = run_rule(tmp_path, "frame-tag-exhaustive")
        assert any("remote driver" in f.message and "QUERY" in f.message
                   for f in findings)

    def test_asymmetric_value_tag_flagged(self, tmp_path):
        write(tmp_path, "server/protocol.py",
              PROTOCOL_FIXTURE.replace(
                  '        if data[offset:offset + 1] == b"s":\n'
                  '            return "s"\n', ""))
        findings = run_rule(tmp_path, "frame-tag-exhaustive")
        assert len(findings) == 1
        assert "'s'" in findings[0].message and "_decode_at" in findings[0].message

    def test_non_frame_constants_ignored(self, tmp_path):
        # PROTOCOL_VERSION / MAX_FRAME_BYTES are not frames; no dispatch
        # arm is demanded for them.
        write(tmp_path, "server/protocol.py", PROTOCOL_FIXTURE)
        write(tmp_path, "server/server.py", SERVER_FIXTURE)
        findings = run_rule(tmp_path, "frame-tag-exhaustive")
        assert not any("PROTOCOL_VERSION" in f.message for f in findings)
