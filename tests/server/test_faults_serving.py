"""Wire-level fault injection: server seams, client healing, typed shedding.

These tests arm :class:`~repro.faults.FaultPlan` sites on a real served
engine and drive it through the remote PEP 249 driver, checking the failure
contract end to end: retryable typed errors, transparent reconnect+replay at
transaction boundaries, connection poisoning inside transactions, and the
engine surviving a session teardown that hits a failing device.
"""

import time

import pytest

from repro import InstantDB
from repro.client import connect
from repro.core.errors import (
    ConnectionPoisonedError,
    OperationalError,
    StatementTimeoutError,
)
from repro.faults import FaultPlan
from repro.server import ServerThread


def wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def serve(engine, **kwargs):
    engine.execute("CREATE TABLE t (id INT PRIMARY KEY, val TEXT)")
    return ServerThread(engine, **kwargs).start()


class TestStatementTimeout:
    def test_slow_statement_gets_typed_retryable_error(self):
        engine = InstantDB()
        server = serve(engine, statement_timeout=0.0)
        try:
            conn = connect(*server.address, retries=0)
            with pytest.raises(StatementTimeoutError):
                conn.execute("SELECT id FROM t")
            assert server.metrics()["statement_timeouts"] >= 1
            conn.close()
        finally:
            server.stop(drain=False)
            engine.close()


class TestClientRetry:
    def test_send_fault_outside_txn_is_replayed_transparently(self):
        plan = FaultPlan(seed=4)
        engine = InstantDB()
        server = serve(engine)
        try:
            conn = connect(*server.address, retries=2, retry_backoff=0.001,
                           retry_seed=4, fault_plan=plan)
            conn.execute("INSERT INTO t (id, val) VALUES (1, 'a')")
            conn.commit()
            plan.fail_once("client.send", "disconnect")
            rows = conn.execute("SELECT val FROM t WHERE id = 1").fetchall()
            assert rows[0][0] == "a"
            assert conn.reconnects == 1
            conn.close()
        finally:
            server.stop(drain=False)
            engine.close()

    def test_recv_fault_outside_txn_is_replayed_transparently(self):
        plan = FaultPlan(seed=4)
        engine = InstantDB()
        server = serve(engine)
        try:
            conn = connect(*server.address, retries=2, retry_backoff=0.001,
                           retry_seed=4, fault_plan=plan)
            plan.fail_once("client.recv", "disconnect")
            rows = conn.execute("SELECT COUNT(*) AS n FROM t").fetchall()
            assert rows[0][0] == 0
            assert conn.reconnects == 1
            conn.close()
        finally:
            server.stop(drain=False)
            engine.close()

    def test_retries_exhausted_surfaces_operational_error(self):
        plan = FaultPlan(seed=4)
        engine = InstantDB()
        server = serve(engine)
        try:
            conn = connect(*server.address, retries=1, retry_backoff=0.001,
                           fault_plan=plan)
            plan.fail_with_probability("client.send", "disconnect", 1.0)
            with pytest.raises(OperationalError):
                conn.execute("SELECT id FROM t")
            plan.disarm()
            conn.close()
        finally:
            server.stop(drain=False)
            engine.close()


class TestPoisoning:
    def test_mid_txn_transport_failure_poisons_the_connection(self):
        plan = FaultPlan(seed=4)
        engine = InstantDB()
        server = serve(engine)
        try:
            conn = connect(*server.address, retries=3, retry_backoff=0.001,
                           fault_plan=plan)
            # open a server-side transaction, then kill the transport under
            # it: replaying mid-transaction could double-apply, so the
            # connection must poison instead of silently retrying
            conn.execute("INSERT INTO t (id, val) VALUES (1, 'a')")
            plan.fail_once("client.send", "disconnect")
            with pytest.raises(OperationalError):
                conn.execute("INSERT INTO t (id, val) VALUES (2, 'b')")
            with pytest.raises(ConnectionPoisonedError):
                conn.execute("SELECT id FROM t")
            with pytest.raises(ConnectionPoisonedError):
                conn.commit()
            conn.close()
            # the server rolled the open transaction back on disconnect
            fresh = connect(*server.address)
            assert fresh.execute("SELECT COUNT(*) AS n FROM t") \
                .fetchall()[0][0] == 0
            fresh.close()
        finally:
            server.stop(drain=False)
            engine.close()


class TestServerSideFaults:
    def test_server_send_truncation_heals_via_reconnect(self):
        plan = FaultPlan(seed=4)
        engine = InstantDB()
        server = serve(engine, fault_plan=plan)
        try:
            conn = connect(*server.address, retries=3, retry_backoff=0.001,
                           fault_plan=plan)
            plan.fail_once("server.send", "truncate")
            rows = conn.execute("SELECT COUNT(*) AS n FROM t").fetchall()
            assert rows[0][0] == 0
            assert conn.reconnects >= 1
            conn.close()
        finally:
            server.stop(drain=False)
            engine.close()

    def test_teardown_rollback_hitting_bad_device_degrades_not_crashes(
            self, tmp_path):
        plan = FaultPlan(seed=4)
        # a data_dir matters here: the undo's WAL scrub is a *file* rewrite
        engine = InstantDB(data_dir=str(tmp_path / "db"), fault_plan=plan)
        server = serve(engine, fault_plan=plan)
        try:
            conn = connect(*server.address, retries=0)
            conn.execute("INSERT INTO t (id, val) VALUES (1, 'a')")
            # flush the WAL so the uncommitted insert's record is on disk:
            # the teardown rollback must now *scrub* it (a file rewrite),
            # and that rewrite hits the failing device
            server.submit(engine.wal.flush)
            plan.fail_once("wal.rewrite", "enospc")
            conn._sock.close()  # abrupt disconnect, no GOODBYE
            # the abort completes its bookkeeping (locks released, session
            # gone) and the engine degrades to read-only instead of wedging
            assert wait_until(lambda: engine.read_only)
            assert wait_until(
                lambda: server.metrics()["sessions_closed"] == 1)
            assert engine.transactions.stats.undo_failures == 1
            plan.disarm()
            # a new session still reads, and recovery restores writability
            fresh = connect(*server.address)
            assert fresh.execute("SELECT COUNT(*) AS n FROM t") \
                .fetchall()[0][0] == 0
            server.submit(lambda: engine.recover(drain=True))
            fresh.execute("INSERT INTO t (id, val) VALUES (3, 'c')")
            fresh.commit()
            fresh.close()
        finally:
            server.stop(drain=False)
            engine.close()
