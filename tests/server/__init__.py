"""Tests of the network serving subsystem (wire protocol, sessions, server)."""
