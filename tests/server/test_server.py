"""Serving-layer integration tests: sessions, isolation, failure modes.

Every test runs a real :class:`~repro.server.InstantDBServer` on a
background event-loop thread and talks to it over actual sockets — either
through the remote PEP 249 driver or, for the failure-mode tests, through a
raw socket speaking hand-built frames.
"""

import socket
import threading
import time

import pytest

from repro import InstantDB
from repro.client import connect
from repro.core.errors import (
    OperationalError,
    ProgrammingError,
    TransactionAborted,
)
from repro.server import ServerThread, protocol

from ..conftest import build_engine


@pytest.fixture
def served():
    """A fresh engine served on an ephemeral port; stops on teardown."""
    engine = InstantDB()
    engine.execute("CREATE TABLE t (id INT PRIMARY KEY, val TEXT)")
    server = ServerThread(engine).start()
    yield engine, server
    server.stop(drain=False)


def wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# -- raw socket helpers ----------------------------------------------------------


def raw_connect(address):
    sock = socket.create_connection(address, timeout=5)
    sock.settimeout(5)
    return sock


def send_frame(sock, frame_type, payload):
    sock.sendall(protocol.encode_frame(frame_type, payload))


def read_frame(sock):
    prefix = b""
    while len(prefix) < 4:
        chunk = sock.recv(4 - len(prefix))
        if not chunk:
            raise ConnectionError("server closed the connection")
        prefix += chunk
    length = protocol.parse_frame_length(prefix)
    body = b""
    while len(body) < length:
        chunk = sock.recv(length - len(body))
        if not chunk:
            raise ConnectionError("server closed the connection")
        body += chunk
    return protocol.decode_frame_body(body)


def hello(sock):
    send_frame(sock, protocol.HELLO,
               {"version": protocol.PROTOCOL_VERSION, "client": "raw"})
    frame_type, reply = read_frame(sock)
    assert frame_type == protocol.OK
    return reply


# -- handshake and admission ------------------------------------------------------


class TestHandshakeAndAdmission:
    def test_version_mismatch_is_rejected(self, served):
        _, server = served
        sock = raw_connect(server.address)
        send_frame(sock, protocol.HELLO, {"version": 99})
        frame_type, reply = read_frame(sock)
        assert frame_type == protocol.ERROR
        assert "version" in reply["message"]
        sock.close()

    def test_frames_before_handshake_are_rejected(self, served):
        _, server = served
        sock = raw_connect(server.address)
        send_frame(sock, protocol.EXECUTE, {"sql": "SELECT 1", "params": []})
        frame_type, reply = read_frame(sock)
        assert frame_type == protocol.ERROR
        assert "handshake" in reply["message"]
        sock.close()

    def test_capacity_cap_turns_connections_away(self):
        engine = InstantDB()
        server = ServerThread(engine, max_sessions=1).start()
        try:
            first = connect(*server.address)
            with pytest.raises(OperationalError, match="capacity"):
                connect(*server.address)
            assert server.metrics()["sessions_rejected"] == 1
            first.close()
            # a slot freed up: the next connection is admitted
            assert wait_until(lambda: len(server.server.sessions) == 0)
            second = connect(*server.address)
            second.close()
        finally:
            server.stop(drain=False)


# -- malformed and truncated frames ----------------------------------------------


class TestMalformedFrames:
    def test_oversize_length_prefix_gets_typed_error(self, served):
        _, server = served
        sock = raw_connect(server.address)
        sock.sendall((protocol.MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
        frame_type, reply = read_frame(sock)
        assert frame_type == protocol.ERROR
        assert reply["error_class"] == "ProtocolError"
        sock.close()

    def test_garbage_payload_gets_typed_error(self, served):
        _, server = served
        sock = raw_connect(server.address)
        body = bytes([protocol.HELLO]) + b"\xde\xad\xbe\xef"
        sock.sendall(len(body).to_bytes(4, "big") + body)
        frame_type, reply = read_frame(sock)
        assert frame_type == protocol.ERROR
        assert reply["error_class"] == "ProtocolError"
        sock.close()

    def test_truncated_frame_then_disconnect_leaves_server_healthy(self, served):
        engine, server = served
        sock = raw_connect(server.address)
        hello(sock)
        frame = protocol.encode_frame(protocol.EXECUTE,
                                      {"sql": "SELECT 1", "params": []})
        sock.sendall(frame[:7])                 # length promises more bytes
        sock.close()
        assert wait_until(lambda: len(server.server.sessions) == 0)
        # the server took no damage: a fresh client works end to end
        conn = connect(*server.address)
        conn.execute("INSERT INTO t VALUES (?, ?)", (1, "a"))
        conn.commit()
        assert conn.execute("SELECT COUNT(*) AS n FROM t").fetchall() == [(1,)]
        conn.close()

    def test_unknown_frame_type_gets_typed_error(self, served):
        _, server = served
        sock = raw_connect(server.address)
        hello(sock)
        send_frame(sock, 0x7F, {})
        frame_type, reply = read_frame(sock)
        assert frame_type == protocol.ERROR
        assert "unknown frame" in reply["message"]
        sock.close()


# -- concurrent sessions ----------------------------------------------------------


class TestConcurrentSessions:
    def test_sessions_have_independent_transactions(self, served):
        _, server = served
        one = connect(*server.address)
        two = connect(*server.address)
        one.execute("INSERT INTO t VALUES (?, ?)", (1, "a"))
        assert one.in_transaction
        assert not two.in_transaction
        # the engine's coarse locks abort a reader of a write-locked table
        # immediately — the conflict crosses the wire as TransactionAborted
        with pytest.raises(TransactionAborted):
            two.execute("SELECT * FROM t")
        one.commit()
        assert two.execute("SELECT val FROM t").fetchall() == [("a",)]
        one.close()
        two.close()

    def test_many_clients_in_parallel(self, served):
        engine, server = served
        errors = []

        def client_worker(worker_id):
            try:
                conn = connect(*server.address)
                for i in range(10):
                    while True:
                        try:
                            conn.execute("INSERT INTO t VALUES (?, ?)",
                                         (worker_id * 100 + i, "w"))
                            conn.commit()
                            break
                        except TransactionAborted:
                            conn.rollback()
                            time.sleep(0.001)
                conn.close()
            except Exception as error:          # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=client_worker, args=(n,))
                   for n in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        assert engine.row_count("t") == 80
        assert server.metrics()["sessions_opened"] >= 8

    def test_per_session_cursors_are_independent(self, served):
        _, server = served
        conn = connect(*server.address)
        conn.cursor().executemany("INSERT INTO t VALUES (?, ?)",
                                  [(i, "x") for i in range(200)])
        conn.commit()
        a = conn.execute("SELECT id FROM t ORDER BY id")
        b = conn.execute("SELECT id FROM t ORDER BY id")
        # interleaved fetch-N on two server-side cursors of one session
        assert a.fetchmany(100) == [(i,) for i in range(100)]
        assert b.fetchone() == (0,)
        assert a.fetchmany(100) == [(i,) for i in range(100, 200)]
        assert b.fetchmany(199) == [(i,) for i in range(1, 200)]
        assert a.fetchone() is None
        conn.close()


# -- expiry waves under concurrent load -------------------------------------------


class TestExpiryWaves:
    def test_degradation_is_visible_over_the_wire(self):
        engine = build_engine()
        engine.execute("DECLARE PURPOSE service SET ACCURACY LEVEL city "
                       "FOR person.location")
        server = ServerThread(engine).start()
        try:
            conn = connect(*server.address, purpose="service")
            conn.execute("INSERT INTO person (id, location) VALUES (?, ?)",
                         (1, "1 Main Street, Paris"))
            conn.commit()
            # fire the degradation wave *on the engine executor*, serialized
            # with client statements exactly like a production timer would be
            server.submit(lambda: engine.advance_time(hours=2))
            assert conn.execute("SELECT location FROM person").fetchall() == \
                [("Paris",)]
            conn.close()
        finally:
            server.stop(drain=False)

    def test_interleaved_clients_survive_expiry_waves(self):
        engine = build_engine()
        engine.execute("DECLARE PURPOSE service SET ACCURACY LEVEL city "
                       "FOR person.location")
        server = ServerThread(engine).start()
        errors = []
        stop = threading.Event()

        def client_worker(worker_id):
            try:
                conn = connect(*server.address, purpose="service")
                for i in range(25):
                    try:
                        conn.execute(
                            "INSERT INTO person (id, location) VALUES (?, ?)",
                            (worker_id * 1000 + i, "1 Main Street, Paris"))
                        conn.commit()
                        conn.execute("SELECT COUNT(*) AS n FROM person"
                                     ).fetchall()
                    except TransactionAborted:
                        conn.rollback()
                conn.close()
            except Exception as error:          # pragma: no cover
                errors.append(error)

        def wave_worker():
            while not stop.is_set():
                server.submit(lambda: engine.advance_time(minutes=30))
                time.sleep(0.005)

        clients = [threading.Thread(target=client_worker, args=(n,))
                   for n in range(4)]
        waves = threading.Thread(target=wave_worker)
        for thread in clients:
            thread.start()
        waves.start()
        for thread in clients:
            thread.join(timeout=60)
        stop.set()
        waves.join(timeout=10)
        try:
            assert errors == []
            # the engine survived interleaving and still answers queries
            # (on its executor thread: the server is still serving it)
            result = server.submit(
                engine.execute, "SELECT COUNT(*) AS n FROM person")
            assert result.rows[0][0] >= 0
        finally:
            server.stop(drain=False)


# -- disconnects, reaping, shutdown -----------------------------------------------


class TestFailureModes:
    def test_mid_statement_disconnect_rolls_back(self, served):
        engine, server = served
        sock = raw_connect(server.address)
        hello(sock)
        send_frame(sock, protocol.EXECUTE,
                   {"sql": "INSERT INTO t VALUES (?, ?)", "params": [1, "a"]})
        # vanish without reading the reply or committing
        sock.close()
        assert wait_until(
            lambda: server.metrics()["sessions_closed"] == 1)
        assert engine.row_count("t") == 0       # uncommitted work discarded
        assert server.metrics()["disconnects_with_open_txn"] == 1

    def test_idle_sessions_are_reaped(self):
        engine = InstantDB()
        engine.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        server = ServerThread(engine, idle_timeout=0.05).start()
        try:
            conn = connect(*server.address)
            conn.execute("INSERT INTO t VALUES (?)", (1,))
            assert wait_until(
                lambda: server.metrics()["sessions_reaped"] == 1)
            # the reap rolled back the abandoned transaction
            assert engine.row_count("t") == 0
            with pytest.raises(OperationalError):
                conn.execute("SELECT 1")
        finally:
            server.stop(drain=False)

    def test_graceful_drain_shutdown(self):
        engine = InstantDB()
        engine.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        server = ServerThread(engine).start()
        conn = connect(*server.address)
        conn.execute("INSERT INTO t VALUES (?)", (1,))
        conn.commit()
        address = server.address
        server.stop(drain=True)
        # committed work survived the drain; the listener is gone
        assert engine.row_count("t") == 1
        with pytest.raises(OperationalError):
            connect(*address)


# -- metrics ----------------------------------------------------------------------


class TestMetrics:
    def test_statement_counters_and_latency_quantiles(self, served):
        _, server = served
        conn = connect(*server.address)
        for i in range(20):
            conn.execute("INSERT INTO t VALUES (?, ?)", (i, "x"))
        conn.commit()
        snapshot = conn.metrics()
        assert snapshot["statements"] == 20
        assert snapshot["latency_count"] == 20
        assert snapshot["latency_p50"] is not None
        assert snapshot["latency_p99"] >= snapshot["latency_p50"]
        assert snapshot["active_sessions"] == 1
        assert snapshot["sessions_opened"] == 1
        conn.close()
        assert wait_until(
            lambda: server.metrics()["sessions_closed"] == 1)

    def test_errors_are_counted(self, served):
        _, server = served
        conn = connect(*server.address)
        with pytest.raises(ProgrammingError):
            conn.execute("SELECT nope FROM missing")
        assert server.metrics()["errors"] == 1
        conn.close()
