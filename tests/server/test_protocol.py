"""Wire codec unit tests: value round trips, frame limits, malformed input."""

import pytest

from repro.core.errors import OperationalError
from repro.core.policy import AccuracyRequirement, Purpose
from repro.core.values import NULL, REMOVED, SUPPRESSED
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    EXECUTE,
    ProtocolError,
    decode_frame_body,
    decode_purpose,
    decode_value,
    encode_frame,
    encode_purpose,
    encode_value,
    parse_frame_length,
)


def roundtrip(value):
    return decode_value(encode_value(value))


class TestValueCodec:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, 1, -17, 10**30, 3.5, -0.0, float("inf"),
        "", "héllo", "名前; DROP TABLE t; --", b"", b"\x00\xffbytes",
        (), (1, "a", None), [1, [2, [3]]], {"k": (1, 2), 3: "v"},
    ])
    def test_plain_values_round_trip(self, value):
        assert roundtrip(value) == value

    def test_bool_is_not_flattened_to_int(self):
        assert roundtrip(True) is True
        assert roundtrip(0) == 0 and roundtrip(0) is not False

    def test_degradation_sentinels_round_trip_by_identity(self):
        # a degraded value arriving as the *string* "SUPPRESSED" would be
        # both a privacy and a correctness bug — identity must survive
        assert roundtrip(SUPPRESSED) is SUPPRESSED
        assert roundtrip(REMOVED) is REMOVED
        assert roundtrip(NULL) is NULL
        row = (1, SUPPRESSED, "Paris", NULL)
        assert roundtrip(row) == row
        assert roundtrip(row)[1] is SUPPRESSED

    def test_unencodable_type_is_rejected(self):
        with pytest.raises(ProtocolError):
            encode_value(object())

    @pytest.mark.parametrize("data", [
        b"", b"x", b"i\x00\x00\x00\x02a",       # unknown tag / malformed int
        b"f\x00\x00",                             # truncated float
        b"s\x00\x00\x00\x05ab",                  # truncated string body
        b"t\x00\x00\x00\x02N",                   # truncated tuple
        b"NN",                                    # trailing bytes
    ])
    def test_malformed_payloads_raise_protocol_error(self, data):
        with pytest.raises(ProtocolError):
            decode_value(data)

    def test_protocol_error_is_operational(self):
        # malformed frames surface through the PEP 249 hierarchy
        assert issubclass(ProtocolError, OperationalError)


class TestFrameCodec:
    def test_frame_round_trip(self):
        frame = encode_frame(EXECUTE, {"sql": "SELECT 1", "params": []})
        length = parse_frame_length(frame[:4])
        assert length == len(frame) - 4
        frame_type, payload = decode_frame_body(frame[4:])
        assert frame_type == EXECUTE
        assert payload == {"sql": "SELECT 1", "params": []}

    def test_zero_and_oversize_lengths_rejected(self):
        with pytest.raises(ProtocolError):
            parse_frame_length(b"\x00\x00\x00\x00")
        with pytest.raises(ProtocolError):
            parse_frame_length((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
        with pytest.raises(ProtocolError):
            parse_frame_length(b"\x00\x00")      # truncated prefix

    def test_oversize_frame_rejected_on_encode(self):
        with pytest.raises(ProtocolError):
            encode_frame(EXECUTE, "x" * (MAX_FRAME_BYTES + 1))

    def test_empty_frame_body_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame_body(b"")


class TestPurposeCodec:
    def test_none_and_names_pass_through(self):
        assert encode_purpose(None) is None
        assert decode_purpose(None) is None
        assert encode_purpose("stats") == "stats"
        assert decode_purpose("stats") == "stats"

    def test_adhoc_purpose_round_trips(self):
        purpose = Purpose("strict")
        purpose.add_requirement(AccuracyRequirement(
            table="person", column="location", level=0))
        spec = roundtrip(encode_purpose(purpose))
        rebuilt = decode_purpose(spec)
        assert isinstance(rebuilt, Purpose)
        assert rebuilt.name == "strict"
        requirement = rebuilt._requirements[("person", "location")]
        assert requirement.level == 0

    def test_malformed_purpose_spec_rejected(self):
        with pytest.raises(ProtocolError):
            decode_purpose({"requirements": []})
