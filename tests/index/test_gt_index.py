"""Tests for the degradation-aware GT-partitioned index."""

import pytest

from repro.core.errors import IndexError_
from repro.core.values import SUPPRESSED
from repro.index.gt_index import GTIndex


@pytest.fixture
def index(location_tree):
    return GTIndex("gt_location", location_tree)


PARIS_ADDR = "1 Main Street, Paris"
LYON_ADDR = "2 Station Road, Lyon"
BERLIN_ADDR = "3 Church Lane, Berlin"


class TestLevelAwareOperations:
    def test_insert_at_and_search_at_level0(self, index):
        index.insert_at(PARIS_ADDR, 0, 1)
        assert index.search_at(PARIS_ADDR, 0) == [1]

    def test_search_at_coarser_level_folds_finer_buckets(self, index):
        index.insert_at(PARIS_ADDR, 0, 1)        # stored accurate
        index.insert_at("Paris", 1, 2)            # stored at city level
        index.insert_at(LYON_ADDR, 0, 3)
        assert index.search_at("Paris", 1) == [1, 2]
        assert index.search_at("France", 3) == [1, 2, 3]
        assert index.search_at("Germany", 3) == []

    def test_rows_stored_coarser_than_demanded_are_excluded(self, index):
        index.insert_at("France", 3, 1)           # only country known
        assert index.search_at("Paris", 1) == []
        assert index.search_at("France", 3) == [1]

    def test_degrade_entry_moves_posting(self, index):
        index.insert_at(PARIS_ADDR, 0, 1)
        index.degrade_entry(PARIS_ADDR, 0, "Paris", 1, 1)
        assert index.search_at(PARIS_ADDR, 0) == []
        assert index.search_at("Paris", 1) == [1]
        assert len(index) == 1

    def test_degrade_entry_missing_raises(self, index):
        with pytest.raises(IndexError_):
            index.degrade_entry(PARIS_ADDR, 0, "Paris", 1, 99)

    def test_degrade_entry_backwards_raises(self, index):
        index.insert_at("Paris", 1, 1)
        with pytest.raises(IndexError_):
            index.degrade_entry("Paris", 1, PARIS_ADDR, 0, 1)

    def test_degrade_bucket_moves_every_posting(self, index):
        for row in range(10):
            index.insert_at(PARIS_ADDR, 0, row)
        moved = index.degrade_bucket(PARIS_ADDR, 0, 1)
        assert moved == 10
        assert index.search_at("Paris", 1) == list(range(10))
        assert index.level_histogram()[0] == 0
        index.verify()

    def test_degrade_bucket_merges_into_existing(self, index):
        index.insert_at(PARIS_ADDR, 0, 1)
        index.insert_at("Paris", 1, 2)
        index.degrade_bucket(PARIS_ADDR, 0, 1)
        assert index.search_at("Paris", 1) == [1, 2]

    def test_degrade_bucket_empty_returns_zero(self, index):
        assert index.degrade_bucket(PARIS_ADDR, 0, 1) == 0

    def test_delete_at(self, index):
        index.insert_at(PARIS_ADDR, 0, 1)
        assert index.delete_at(PARIS_ADDR, 0, 1)
        assert not index.delete_at(PARIS_ADDR, 0, 1)
        assert len(index) == 0

    def test_suppressed_bucket(self, index):
        index.insert_at(SUPPRESSED, 4, 1)
        assert index.search_at(SUPPRESSED, 4) == [1]

    def test_level_histogram(self, index):
        index.insert_at(PARIS_ADDR, 0, 1)
        index.insert_at("Paris", 1, 2)
        index.insert_at("Paris", 1, 3)
        histogram = index.level_histogram()
        assert histogram[0] == 1 and histogram[1] == 2

    def test_invalid_level_rejected(self, index):
        with pytest.raises(IndexError_):
            index.insert_at("Paris", 9, 1)
        with pytest.raises(IndexError_):
            index.search_at("Paris", 9)


class TestFlatInterface:
    def test_flat_insert_goes_to_level0(self, index):
        index.insert(PARIS_ADDR, 1)
        assert index.search_at(PARIS_ADDR, 0) == [1]
        assert index.search(PARIS_ADDR) == [1]

    def test_flat_delete_scans_levels(self, index):
        index.insert_at("Paris", 1, 7)
        assert index.delete("Paris", 7)
        assert not index.delete("Paris", 7)

    def test_update_via_base_interface(self, index):
        index.insert(PARIS_ADDR, 1)
        index.update(PARIS_ADDR, BERLIN_ADDR, 1)
        assert index.search(BERLIN_ADDR) == [1]

    def test_values_at_level(self, index):
        index.insert_at("Paris", 1, 1)
        index.insert_at("Lyon", 1, 2)
        assert set(index.values_at_level(1)) == {"Paris", "Lyon"}

    def test_raw_image_reflects_degradation(self, index):
        index.insert_at(PARIS_ADDR, 0, 1)
        assert PARIS_ADDR.encode() in index.raw_image()
        index.degrade_bucket(PARIS_ADDR, 0, 3)
        assert PARIS_ADDR.encode() not in index.raw_image()
        assert b"France" in index.raw_image()
