"""Tests for the B+-tree index, including a hypothesis model check."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import IndexError_
from repro.core.values import SUPPRESSED, sort_key
from repro.index.btree import BPlusTreeIndex


class TestBasicOperations:
    def test_insert_and_search(self):
        index = BPlusTreeIndex("idx", order=4)
        index.insert("paris", 1)
        index.insert("lyon", 2)
        assert index.search("paris") == [1]
        assert index.search("lyon") == [2]
        assert index.search("rome") == []

    def test_duplicate_keys_accumulate(self):
        index = BPlusTreeIndex("idx", order=4)
        index.insert("paris", 1)
        index.insert("paris", 2)
        index.insert("paris", 3)
        assert index.search("paris") == [1, 2, 3]
        assert len(index) == 3

    def test_delete(self):
        index = BPlusTreeIndex("idx", order=4)
        index.insert("a", 1)
        index.insert("a", 2)
        assert index.delete("a", 1) is True
        assert index.search("a") == [2]
        assert index.delete("a", 99) is False
        assert index.delete("zzz", 1) is False

    def test_update_moves_entry(self):
        index = BPlusTreeIndex("idx", order=4)
        index.insert("1 Main Street, Paris", 7)
        index.update("1 Main Street, Paris", "Paris", 7)
        assert index.search("1 Main Street, Paris") == []
        assert index.search("Paris") == [7]
        assert index.stats.updates == 1

    def test_update_missing_entry_raises(self):
        index = BPlusTreeIndex("idx", order=4)
        with pytest.raises(IndexError_):
            index.update("ghost", "new", 1)

    def test_minimum_order_enforced(self):
        with pytest.raises(IndexError_):
            BPlusTreeIndex("idx", order=2)


class TestSplitsAndOrdering:
    def test_many_inserts_keep_sorted_order(self):
        index = BPlusTreeIndex("idx", order=4)
        for value in range(200, 0, -1):
            index.insert(value, value)
        keys = list(index.keys())
        assert keys == sorted(keys)
        assert len(index) == 200
        assert index.height > 1
        index.verify()

    def test_search_after_splits(self):
        index = BPlusTreeIndex("idx", order=4)
        for value in range(500):
            index.insert(value, value * 10)
        for probe in (0, 137, 499):
            assert index.search(probe) == [probe * 10]

    def test_mixed_types_keep_total_order(self):
        index = BPlusTreeIndex("idx", order=4)
        values = [3, "abc", 1.5, "zzz", True, SUPPRESSED, 42]
        for position, value in enumerate(values):
            index.insert(value, position)
        keys = list(index.keys())
        assert keys == sorted(keys, key=sort_key)

    def test_rebuild_preserves_entries(self):
        index = BPlusTreeIndex("idx", order=4)
        for value in range(100):
            index.insert(value % 17, value)
        before = {key: index.search(key) for key in set(range(17))}
        index.rebuild()
        after = {key: index.search(key) for key in set(range(17))}
        assert before == after


class TestRangeSearch:
    @pytest.fixture
    def index(self):
        index = BPlusTreeIndex("idx", order=4)
        for value in range(0, 100, 10):
            index.insert(value, value)
        return index

    def test_closed_range(self, index):
        assert index.range_search(20, 50) == [20, 30, 40, 50]

    def test_open_bounds(self, index):
        assert index.range_search(20, 50, include_low=False) == [30, 40, 50]
        assert index.range_search(20, 50, include_high=False) == [20, 30, 40]

    def test_unbounded_low(self, index):
        assert index.range_search(None, 30) == [0, 10, 20, 30]

    def test_unbounded_high(self, index):
        assert index.range_search(70, None) == [70, 80, 90]

    def test_full_scan(self, index):
        assert index.range_search(None, None) == list(range(0, 100, 10))

    def test_empty_range(self, index):
        assert index.range_search(41, 49) == []

    def test_range_on_empty_tree(self):
        assert BPlusTreeIndex("idx").range_search(1, 10) == []


keys_strategy = st.integers(min_value=-1000, max_value=1000)


class TestBTreeModelProperties:
    @given(operations=st.lists(
        st.tuples(st.sampled_from(["insert", "delete"]), keys_strategy,
                  st.integers(min_value=0, max_value=50)),
        max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_matches_dict_model(self, operations):
        """The B+-tree behaves exactly like a dict of sets under insert/delete."""
        index = BPlusTreeIndex("model", order=4)
        model = {}
        for action, key, row in operations:
            if action == "insert":
                index.insert(key, row)
                model.setdefault(key, set()).add(row)
            else:
                expected = row in model.get(key, set())
                assert index.delete(key, row) is expected
                if expected:
                    model[key].discard(row)
                    if not model[key]:
                        del model[key]
        for key, rows in model.items():
            assert index.search(key) == sorted(rows)
        assert list(index.keys()) == sorted(model.keys())
        index.verify()

    @given(values=st.lists(keys_strategy, min_size=1, max_size=200),
           low=keys_strategy, high=keys_strategy)
    @settings(max_examples=50, deadline=None)
    def test_range_search_matches_filter(self, values, low, high):
        low, high = min(low, high), max(low, high)
        index = BPlusTreeIndex("model", order=4)
        for position, value in enumerate(values):
            index.insert(value, position)
        expected = sorted(position for position, value in enumerate(values)
                          if low <= value <= high)
        assert index.range_search(low, high) == expected
