"""Tests for the hash and bitmap indexes."""

import pytest

from repro.index.bitmap import BitmapIndex
from repro.index.hashindex import HashIndex


class TestHashIndex:
    def test_insert_search_delete(self):
        index = HashIndex("h")
        index.insert("paris", 1)
        index.insert("paris", 2)
        index.insert("lyon", 3)
        assert index.search("paris") == [1, 2]
        assert index.delete("paris", 1)
        assert index.search("paris") == [2]
        assert not index.delete("paris", 99)
        assert not index.delete("ghost", 1)

    def test_duplicate_insert_is_idempotent(self):
        index = HashIndex("h")
        index.insert("a", 1)
        index.insert("a", 1)
        assert len(index) == 1

    def test_update(self):
        index = HashIndex("h")
        index.insert("old", 5)
        index.update("old", "new", 5)
        assert index.search("old") == []
        assert index.search("new") == [5]

    def test_range_search_unsupported(self):
        from repro.core.errors import IndexError_
        with pytest.raises(IndexError_):
            HashIndex("h").range_search(1, 2)

    def test_keys_sorted(self):
        index = HashIndex("h")
        for key in ("b", "a", "c"):
            index.insert(key, 1)
        assert list(index.keys()) == ["a", "b", "c"]

    def test_unhashable_keys_supported(self):
        index = HashIndex("h")
        index.insert(["list", "key"], 1)
        assert index.search(["list", "key"]) == [1]

    def test_raw_image_contains_keys(self):
        index = HashIndex("h")
        index.insert("sensitive-address", 1)
        assert b"sensitive-address" in index.raw_image()


class TestBitmapIndex:
    def test_insert_search_delete(self):
        index = BitmapIndex("b")
        index.insert("France", 1)
        index.insert("France", 2)
        index.insert("Italy", 3)
        assert index.search("France") == [1, 2]
        assert index.delete("France", 1)
        assert index.search("France") == [2]
        assert not index.delete("France", 99)
        assert not index.delete("Spain", 1)

    def test_count_without_materializing(self):
        index = BitmapIndex("b")
        for row in range(50):
            index.insert("France" if row % 2 else "Italy", row)
        assert index.count("France") == 25
        assert index.count("Italy") == 25
        assert index.count("Spain") == 0

    def test_search_any_is_bitmap_or(self):
        index = BitmapIndex("b")
        index.insert("France", 1)
        index.insert("Italy", 2)
        index.insert("Spain", 3)
        assert index.search_any(["France", "Spain"]) == [1, 3]

    def test_update_degradation_style(self):
        index = BitmapIndex("b")
        index.insert("Paris", 1)
        index.insert("Paris", 2)
        index.update("Paris", "France", 1)
        assert index.search("Paris") == [2]
        assert index.search("France") == [1]

    def test_distinct_keys(self):
        index = BitmapIndex("b")
        index.insert("a", 1)
        index.insert("b", 2)
        index.insert("a", 3)
        assert index.distinct_keys() == 2

    def test_large_row_keys(self):
        index = BitmapIndex("b")
        index.insert("x", 10**6)
        index.insert("x", 10**6 + 1)
        assert index.search("x") == [10**6, 10**6 + 1]

    def test_duplicate_insert_idempotent(self):
        index = BitmapIndex("b")
        index.insert("x", 1)
        index.insert("x", 1)
        assert len(index) == 1
