"""Shared fixtures: domains, policies and pre-wired InstantDB instances."""

from __future__ import annotations

import pytest

from repro import AttributeLCP, InstantDB
from repro.core.domains import (
    build_diagnosis_tree,
    build_location_tree,
    build_salary_ranges,
    build_websearch_tree,
)
from repro.workloads import LocationTraceGenerator, person_table_sql

#: The paper's Fig. 2 delays for the location attribute.
LOCATION_TRANSITIONS = ["1 hour", "1 day", "1 month", "3 months"]
SALARY_TRANSITIONS = ["2 hours", "2 days", "2 months", "6 months"]


@pytest.fixture(scope="session")
def location_tree():
    return build_location_tree()


@pytest.fixture(scope="session")
def salary_scheme():
    return build_salary_ranges()


@pytest.fixture(scope="session")
def websearch_tree():
    return build_websearch_tree()


@pytest.fixture(scope="session")
def diagnosis_tree():
    return build_diagnosis_tree()


@pytest.fixture
def location_lcp(location_tree):
    return AttributeLCP(location_tree, transitions=LOCATION_TRANSITIONS,
                        name="location_lcp")


@pytest.fixture
def salary_lcp(salary_scheme):
    return AttributeLCP(salary_scheme, transitions=SALARY_TRANSITIONS,
                        name="salary_lcp")


def build_engine(strategy: str = "rewrite", with_salary_policy: bool = True,
                 data_dir=None) -> InstantDB:
    """Create an InstantDB with the canonical PERSON table registered."""
    db = InstantDB(strategy=strategy, data_dir=data_dir)
    location = db.register_domain(build_location_tree())
    salary = db.register_domain(build_salary_ranges())
    db.register_policy(AttributeLCP(location, transitions=LOCATION_TRANSITIONS,
                                    name="location_lcp"))
    db.register_policy(AttributeLCP(salary, transitions=SALARY_TRANSITIONS,
                                    name="salary_lcp"))
    db.execute(person_table_sql(
        policy_name="location_lcp",
        salary_policy="salary_lcp" if with_salary_policy else None,
    ))
    return db


@pytest.fixture
def empty_db() -> InstantDB:
    """Engine with the person table created but no data."""
    return build_engine()


@pytest.fixture
def populated_db() -> InstantDB:
    """Engine with 40 deterministic location events inserted at t=0."""
    db = build_engine()
    generator = LocationTraceGenerator(num_users=12, seed=5)
    for index, event in enumerate(generator.events(40), start=1):
        row = event.as_row()
        row["id"] = index
        db.insert_row("person", row)
    db.execute("DECLARE PURPOSE service SET ACCURACY LEVEL city FOR person.location")
    db.execute("DECLARE PURPOSE statistics SET ACCURACY LEVEL country FOR person.location, "
               "range1000 FOR person.salary")
    return db


@pytest.fixture
def trace_generator() -> LocationTraceGenerator:
    return LocationTraceGenerator(num_users=12, seed=5)
