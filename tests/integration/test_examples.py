"""Smoke tests: every shipped example runs cleanly and prints its key results."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXPECTED_SNIPPETS = {
    "quickstart.py": ["CREATE TABLE person", "France", "rows remain"],
    "location_privacy.py": ["ingested", "exposure of ACCURATE locations",
                            "attacker snapshotting"],
    "web_search_log.py": ["raw query strings still visible: 0",
                          "topic-level trends", "k-anonymity"],
    "hospital_records.py": ["per-specialty statistics", "review_closed"],
    "attack_forensics.py": ["continuous attacker", "forensic attacker",
                            "write-ahead log"],
}


@pytest.mark.parametrize("script", sorted(EXPECTED_SNIPPETS))
def test_example_runs_and_reports(script, capsys, monkeypatch):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example {script} is missing"
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    output = capsys.readouterr().out
    for snippet in EXPECTED_SNIPPETS[script]:
        assert snippet in output, f"{script}: expected {snippet!r} in its output"


def test_examples_directory_is_complete():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert set(EXPECTED_SNIPPETS) <= scripts
    assert len(scripts) >= 3, "the deliverable requires at least three examples"
