"""The README's (and docs') code blocks run verbatim.

Every fenced ``python`` block in ``README.md`` — and in the executable doc
pages listed below — is executed, in order, in one shared namespace per
document: the quickstart, the policy example, the crash-recovery example
and the scenario-suite walkthrough are living documentation, and this test
fails the build if they drift from the API.
"""

import re
from pathlib import Path

README = Path(__file__).resolve().parents[2] / "README.md"
SCENARIOS_DOC = Path(__file__).resolve().parents[2] / "docs" / "scenarios.md"

_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def extract_python_blocks(text: str):
    return [match.group(1) for match in _BLOCK.finditer(text)]


def test_readme_exists_with_required_sections():
    text = README.read_text()
    for heading in ["Install", "Quickstart", "Benchmarks", "Layout"]:
        assert heading in text, f"README lacks a {heading!r} section"
    assert "docs/architecture.md" in text and "docs/durability.md" in text


def _run_blocks(document: Path, blocks) -> None:
    namespace: dict = {"__name__": "readme"}
    for index, block in enumerate(blocks):
        try:
            exec(compile(block, f"{document.name}[block {index}]", "exec"),
                 namespace)
        except Exception as error:   # pragma: no cover - failure reporting
            raise AssertionError(
                f"{document.name} code block {index} no longer runs: "
                f"{error!r}\n{block}"
            ) from error


def test_readme_python_blocks_run_verbatim():
    blocks = extract_python_blocks(README.read_text())
    assert len(blocks) >= 4, ("README should show quickstart, policy, "
                              "recovery and scenario code")
    _run_blocks(README, blocks)


def test_scenarios_doc_exists_and_is_linked():
    assert SCENARIOS_DOC.exists()
    assert "docs/scenarios.md" in README.read_text()


def test_scenarios_doc_python_blocks_run_verbatim():
    blocks = extract_python_blocks(SCENARIOS_DOC.read_text())
    assert len(blocks) >= 3, ("docs/scenarios.md should walk through the "
                              "generator, the oracle and the checker")
    _run_blocks(SCENARIOS_DOC, blocks)
