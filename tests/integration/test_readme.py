"""The README's code blocks run verbatim.

Every fenced ``python`` block in ``README.md`` is executed, in order, in one
shared namespace — the quickstart, the policy example and the
crash-recovery example are living documentation, and this test fails the
build if they drift from the API.
"""

import re
from pathlib import Path

README = Path(__file__).resolve().parents[2] / "README.md"

_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def extract_python_blocks(text: str):
    return [match.group(1) for match in _BLOCK.finditer(text)]


def test_readme_exists_with_required_sections():
    text = README.read_text()
    for heading in ["Install", "Quickstart", "Benchmarks", "Layout"]:
        assert heading in text, f"README lacks a {heading!r} section"
    assert "docs/architecture.md" in text and "docs/durability.md" in text


def test_readme_python_blocks_run_verbatim():
    blocks = extract_python_blocks(README.read_text())
    assert len(blocks) >= 3, "README should show quickstart, policy and recovery code"
    namespace: dict = {"__name__": "readme"}
    for index, block in enumerate(blocks):
        try:
            exec(compile(block, f"README.md[block {index}]", "exec"), namespace)
        except Exception as error:   # pragma: no cover - failure reporting
            raise AssertionError(
                f"README code block {index} no longer runs: {error!r}\n{block}"
            ) from error
