"""Tests for accuracy binding and access-path selection."""

import pytest

from repro.core.domains import build_location_tree, build_salary_ranges
from repro.core.lcp import AttributeLCP
from repro.core.policy import Purpose
from repro.index.bitmap import BitmapIndex
from repro.index.btree import BPlusTreeIndex
from repro.index.gt_index import GTIndex
from repro.index.hashindex import HashIndex
from repro.core.schema import Column, TableSchema
from repro.query.catalog import Catalog, IndexInfo
from repro.query.parser import parse
from repro.query.planner import Planner


@pytest.fixture
def catalog():
    catalog = Catalog()
    location = catalog.registry.register_domain(build_location_tree())
    catalog.registry.register_domain(build_salary_ranges())
    catalog.registry.register_policy(
        AttributeLCP(location, transitions=["1 h", "1 d", "1 month", "3 months"],
                     name="location_lcp"))
    schema = TableSchema("person", [
        Column("id", "INT", primary_key=True),
        Column("name", "TEXT"),
        Column("location", "TEXT", degradable=True, domain="location",
               policy="location_lcp"),
        Column("salary", "INT"),
    ])
    catalog.add_table(schema)
    catalog.add_index(IndexInfo(name="idx_id", table="person", column="id",
                                method="hash", index=HashIndex("idx_id")))
    catalog.add_index(IndexInfo(name="idx_salary", table="person", column="salary",
                                method="btree", index=BPlusTreeIndex("idx_salary")))
    catalog.add_index(IndexInfo(name="idx_loc", table="person", column="location",
                                method="gt",
                                index=GTIndex("idx_loc", location)))
    return catalog


@pytest.fixture
def planner(catalog):
    return Planner(catalog)


class TestAccuracyBinding:
    def test_default_purpose_demands_level_zero(self, planner):
        levels = planner.demanded_levels_for("person", None)
        assert levels == {"location": 0}

    def test_purpose_levels_resolved_by_name(self, planner, catalog):
        purpose = Purpose("stat").require("person", "location", "country")
        levels = planner.demanded_levels_for("person", purpose)
        assert levels == {"location": 3}

    def test_plan_records_levels(self, planner):
        purpose = Purpose("stat").require("person", "location", "city")
        plan = planner.plan_select(parse("SELECT * FROM person"), purpose)
        assert plan.base.demanded_levels == {"location": 1}
        assert plan.purpose is purpose


class TestAccessPathSelection:
    def test_no_where_gives_seqscan(self, planner):
        plan = planner.plan_select(parse("SELECT * FROM person"))
        assert plan.base.access.kind == "seq"

    def test_equality_on_hash_indexed_column(self, planner):
        plan = planner.plan_select(parse("SELECT * FROM person WHERE id = 7"))
        access = plan.base.access
        assert access.kind == "index_eq"
        assert access.column == "id" and access.key == 7

    def test_range_on_btree_indexed_column(self, planner):
        plan = planner.plan_select(
            parse("SELECT * FROM person WHERE salary >= 1000 AND salary < 2000"))
        access = plan.base.access
        assert access.kind == "index_range"
        assert access.low == 1000 and access.include_low
        assert access.high == 2000 and not access.include_high

    def test_between_on_btree_indexed_column(self, planner):
        plan = planner.plan_select(
            parse("SELECT * FROM person WHERE salary BETWEEN 1000 AND 2000"))
        access = plan.base.access
        assert access.kind == "index_range"
        assert (access.low, access.high) == (1000, 2000)

    def test_equality_on_degradable_column_uses_gt_index(self, planner):
        purpose = Purpose("stat").require("person", "location", "city")
        plan = planner.plan_select(
            parse("SELECT * FROM person WHERE location = 'Paris'"), purpose)
        access = plan.base.access
        assert access.kind == "gt_level"
        assert access.level == 1 and access.key == "Paris"

    def test_unindexed_predicate_falls_back_to_seqscan(self, planner):
        plan = planner.plan_select(parse("SELECT * FROM person WHERE name = 'alice'"))
        assert plan.base.access.kind == "seq"

    def test_or_predicate_cannot_use_index(self, planner):
        plan = planner.plan_select(
            parse("SELECT * FROM person WHERE id = 1 OR id = 2"))
        assert plan.base.access.kind == "seq"

    def test_reversed_literal_comparison(self, planner):
        plan = planner.plan_select(parse("SELECT * FROM person WHERE 5 = id"))
        assert plan.base.access.kind == "index_eq"
        assert plan.base.access.key == 5

    def test_flipped_range_operator(self, planner):
        plan = planner.plan_select(parse("SELECT * FROM person WHERE 3000 > salary"))
        access = plan.base.access
        assert access.kind == "index_range"
        assert access.high == 3000 and not access.include_high

    def test_describe_mentions_access_path(self, planner):
        plan = planner.plan_select(parse("SELECT * FROM person WHERE id = 1"))
        assert "IndexScan" in plan.describe()
