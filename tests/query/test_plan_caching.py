"""Plan-cache keys: statistics epoch and parameter shape.

PR-6's two carry-over fixes from the read-path overhaul:

* the prepared-plan cache key includes a **statistics epoch**, so a plan
  costed before a large stats shift (mass update, degradation wave) is
  re-planned instead of reused under economics that no longer hold;
* parameterized SELECTs whose placeholders all sit in the WHERE clause cache
  a **template plan per parameter shape** and bind values per execution,
  instead of re-planning on every execute.
"""

import pytest

from repro import InstantDB
from repro.query.prepared import PARAM_PLAN_CACHE_SIZE
from repro.query.statistics import EPOCH_MOD_FLOOR


@pytest.fixture
def db():
    engine = InstantDB()
    engine.execute("CREATE TABLE t (id INT PRIMARY KEY, grp TEXT, val INT)")
    engine.executemany("INSERT INTO t VALUES (?, ?, ?)",
                       [(i, f"g{i % 5}", i) for i in range(1, 201)])
    engine.execute("CREATE INDEX idx_val ON t (val) USING btree")
    return engine


class TestStatisticsEpoch:
    def test_epoch_advances_on_bulk_modification(self, db):
        before = db.statistics.epoch()
        db.executemany("INSERT INTO t VALUES (?, ?, ?)",
                       [(i, "gx", 1) for i in range(1000, 1000 + EPOCH_MOD_FLOOR)])
        assert db.statistics.epoch() > before

    def test_trickle_writes_keep_the_epoch_stable(self, db):
        before = db.statistics.epoch()
        db.execute("INSERT INTO t VALUES (?, ?, ?)", params=(999, "gx", 1))
        assert db.statistics.epoch() == before

    def test_epoch_is_monotonic_across_table_drop(self, db):
        before = db.statistics.epoch()
        db.execute("DROP TABLE t")
        assert db.statistics.epoch() > before

    def test_stats_shift_retires_cached_plan(self, db):
        """The PR-5 bug: a mass update collapses NDV, the cached index plan
        must not survive — the same predicate now matches the whole table."""
        sql = "SELECT id FROM t WHERE val = 1"
        prepared = db.prepare(sql)
        db.execute(sql)
        db.execute(sql)
        cached = prepared.cached_plan(None, db.catalog.version,
                                      db.statistics.epoch())
        assert cached is not None
        assert cached.base.access.kind == "index_eq"
        db.execute("UPDATE t SET val = 1")            # NDV 200 -> 1
        assert prepared.cached_plan(None, db.catalog.version,
                                    db.statistics.epoch()) is None
        assert db.execute(sql).rows == [(i,) for i in range(1, 201)]
        replanned = prepared.cached_plan(None, db.catalog.version,
                                         db.statistics.epoch())
        assert replanned is not None
        assert replanned.base.access.kind == "seq"

    def test_recovery_reset_bumps_the_epoch(self, db):
        before = db.statistics.epoch()
        db.statistics.table("t").reset()
        assert db.statistics.epoch() > before


class TestParameterShapePlans:
    def test_repeated_parameterized_select_hits_the_plan_cache(self, db):
        sql = "SELECT id FROM t WHERE val = ?"
        misses_before = db.statements.stats.plan_misses
        hits_before = db.statements.stats.plan_hits
        for value in (3, 7, 11, 3, 42):
            assert db.execute(sql, params=(value,)).rows == [(value,)]
        assert db.statements.stats.plan_misses == misses_before + 1
        assert db.statements.stats.plan_hits == hits_before + 4

    def test_bound_values_reach_the_access_path(self, db):
        # the template probes the index with each execution's own value —
        # a stale embedded literal would return the wrong row
        sql = "SELECT id FROM t WHERE val = ?"
        assert db.execute(sql, params=(5,)).rows == [(5,)]
        assert db.execute(sql, params=(6,)).rows == [(6,)]
        assert db.execute(sql, params=(10_000,)).rows == []

    def test_range_and_residual_bind_per_execution(self, db):
        sql = ("SELECT id FROM t WHERE val BETWEEN ? AND ? AND grp = ? "
               "ORDER BY id")
        assert db.execute(sql, params=(10, 20, "g0")).rows == \
            [(10,), (15,), (20,)]
        assert db.execute(sql, params=(10, 20, "g1")).rows == \
            [(11,), (16,)]

    def test_shapes_are_cached_separately(self, db):
        sql = "SELECT id FROM t WHERE val = ?"
        prepared = db.prepare(sql)
        db.execute(sql, params=(5,))
        db.execute(sql, params=(5.0,))
        version, epoch = db.catalog.version, db.statistics.epoch()
        assert prepared.cached_param_plan(None, version, epoch,
                                          ("int",)) is not None
        assert prepared.cached_param_plan(None, version, epoch,
                                          ("float",)) is not None

    def test_null_parameter_is_not_template_planned(self, db):
        sql = "SELECT id FROM t WHERE val = ?"
        prepared = db.prepare(sql)
        # NULL predicate semantics (always false) must not ride an index probe
        assert db.execute(sql, params=(None,)).rows == []
        assert prepared.cached_param_plan(
            None, db.catalog.version, db.statistics.epoch(),
            ("NoneType",)) is None
        # and a later non-NULL execution still answers correctly
        assert db.execute(sql, params=(9,)).rows == [(9,)]

    def test_non_where_placeholders_are_not_eligible(self, db):
        insert = db.prepare("INSERT INTO t VALUES (?, ?, ?)")
        assert not insert.placeholders_confined_to_where
        no_where = db.prepare("SELECT id FROM t")
        assert not no_where.placeholders_confined_to_where

    def test_stats_shift_retires_template_plans(self, db):
        sql = "SELECT id FROM t WHERE val = ?"
        prepared = db.prepare(sql)
        db.execute(sql, params=(1,))
        old = prepared.cached_param_plan(None, db.catalog.version,
                                         db.statistics.epoch(), ("int",))
        assert old is not None and old.base.access.kind == "index_eq"
        db.execute("UPDATE t SET val = 1")            # NDV 200 -> 1
        rows = db.execute(sql, params=(1,)).rows
        assert rows == [(i,) for i in range(1, 201)]
        fresh = prepared.cached_param_plan(None, db.catalog.version,
                                           db.statistics.epoch(), ("int",))
        assert fresh is not None
        assert fresh.base.access.kind == "seq"

    def test_catalog_change_retires_template_plans(self, db):
        sql = "SELECT id FROM t WHERE grp = ?"
        prepared = db.prepare(sql)
        db.execute(sql, params=("g1",))
        seq = prepared.cached_param_plan(None, db.catalog.version,
                                         db.statistics.epoch(), ("str",))
        assert seq is not None and seq.base.access.kind == "seq"
        db.execute("CREATE INDEX idx_grp ON t (grp) USING hash")
        rows = db.execute(sql, params=("g1",)).rows
        assert len(rows) == 40
        indexed = prepared.cached_param_plan(None, db.catalog.version,
                                             db.statistics.epoch(), ("str",))
        assert indexed is not None
        assert indexed.base.access.kind == "index_eq"

    def test_template_cache_is_bounded(self, db):
        prepared = db.prepare("SELECT id FROM t WHERE val = ?")
        plan = db.planner.plan_physical(prepared.statement, None)
        for index in range(PARAM_PLAN_CACHE_SIZE + 4):
            prepared.store_param_plan(None, db.catalog.version, 0,
                                      (f"shape{index}",), plan)
        assert len(prepared._param_plans) <= PARAM_PLAN_CACHE_SIZE

    def test_interpreted_mode_matches_compiled(self):
        compiled = InstantDB()
        interpreted = InstantDB(read_path_optimizations=False)
        for engine in (compiled, interpreted):
            engine.execute("CREATE TABLE t (id INT PRIMARY KEY, val INT)")
            engine.executemany("INSERT INTO t VALUES (?, ?)",
                               [(i, i % 13) for i in range(1, 151)])
            engine.execute("CREATE INDEX idx_val ON t (val) USING btree")
        sql = "SELECT id FROM t WHERE val = ? AND id > ? ORDER BY id"
        for params in [(3, 0), (3, 100), (12, 50)]:
            left = compiled.execute(sql, params=params).rows
            right = interpreted.execute(sql, params=params).rows
            assert left == right
