"""Table statistics: incremental maintenance, estimates, plan flips, recovery.

The statistics subsystem (:mod:`repro.query.statistics`) is maintained at the
same engine sites as secondary indexes — insert, degradation step, stable
update, removal — and feeds the planner's cost-based access-path choice.
These tests cover its whole life cycle: maintenance under insert/degrade/
remove waves, estimate accuracy against actual cardinalities, plans flipping
between index and sequential scans as stats cross the cost threshold, and
exact survival of statistics through checkpoint + crash recovery.
"""

import pytest

from repro import AttributeLCP, InstantDB
from repro.core.domains import build_location_tree
from repro.query.statistics import ColumnStatistics, StatisticsRegistry

PARIS = "1 Main Street, Paris"
LYON = "2 Station Road, Lyon"
TRANSITIONS = ["1 hour", "1 day", "1 month", "3 months"]


def build_db(data_dir=None):
    db = InstantDB(data_dir=None if data_dir is None else str(data_dir))
    location = db.register_domain(build_location_tree())
    db.register_policy(AttributeLCP(location, transitions=TRANSITIONS,
                                    name="location_lcp"))
    db.execute("CREATE TABLE trace (id INT PRIMARY KEY, kind TEXT, location TEXT "
               "DEGRADABLE DOMAIN location POLICY location_lcp)")
    return db


class TestColumnStatistics:
    def test_add_remove_tracks_ndv_and_extremes(self):
        stats = ColumnStatistics()
        for value in (5, 1, 9, 1):
            stats.add(value)
        assert stats.ndv == 3
        assert stats.non_missing == 4
        assert stats.min_value == 1.0 and stats.max_value == 9.0
        stats.remove(9)
        assert stats.max_value == 5.0          # extreme rescans lazily
        stats.remove(1)
        assert stats.ndv == 2                  # one '1' remains
        assert stats.min_value == 1.0

    def test_missing_values_are_counted_separately(self):
        stats = ColumnStatistics()
        stats.add(None)
        stats.add(3)
        assert stats.missing == 1
        assert stats.non_missing == 1
        assert stats.eq_rows(None) == 0.0

    def test_equality_matches_executor_semantics(self):
        stats = ColumnStatistics()
        stats.add("Paris")
        stats.add(10)
        assert stats.eq_rows("PARIS") == 1.0   # case-insensitive like '='
        assert stats.eq_rows(10.0) == 1.0      # numeric cross-type like '='

    def test_range_fraction_is_exact_at_small_ndv(self):
        stats = ColumnStatistics()
        for value in range(100):
            stats.add(value)
        assert stats.range_fraction(low=10, high=19) == pytest.approx(0.10)
        assert stats.range_fraction(low=10, high=19,
                                    include_high=False) == pytest.approx(0.09)


class TestIncrementalMaintenance:
    def test_insert_degrade_remove_wave(self):
        db = build_db()
        db.executemany("INSERT INTO trace VALUES (?, ?, ?)",
                       [(i, f"kind-{i % 4}", PARIS if i % 2 else LYON)
                        for i in range(1, 101)])
        stats = db.statistics.table("trace")
        assert stats.row_count == 100
        assert stats.ndv("kind") == 4
        assert stats.ndv("location") == 2
        # One degradation wave: every address becomes its city, so the
        # location frequency map collapses onto the two city values.
        db.advance_time(hours=2)
        assert stats.row_count == 100
        assert stats.ndv("location") == 2
        assert stats.estimated_eq_rows("location", "Paris") == 50
        assert stats.estimated_eq_rows("location", PARIS) == 0.5  # gone
        # Deletes shrink the counts through the same hooks (a purpose is
        # needed so the degraded rows are visible to the predicate at all).
        db.execute("DECLARE PURPOSE wipe SET ACCURACY LEVEL city "
                   "FOR trace.location")
        db.execute("DELETE FROM trace WHERE kind = 'kind-0'", purpose="wipe")
        assert stats.row_count == 75
        assert stats.ndv("kind") == 3

    def test_final_removal_wave_empties_the_stats(self):
        db = build_db()
        db.executemany("INSERT INTO trace VALUES (?, ?, ?)",
                       [(i, "k", PARIS) for i in range(1, 21)])
        stats = db.statistics.table("trace")
        db.advance_time(days=200)              # whole life cycle: tuples gone
        assert db.row_count("trace") == 0
        assert stats.row_count == 0
        assert stats.ndv("location") == 0

    def test_stable_update_moves_counts(self):
        db = build_db()
        db.executemany("INSERT INTO trace VALUES (?, ?, ?)",
                       [(i, "old", PARIS) for i in range(1, 11)])
        db.execute("UPDATE trace SET kind = 'new' WHERE id <= 4")
        stats = db.statistics.table("trace")
        assert stats.estimated_eq_rows("kind", "new") == 4
        assert stats.estimated_eq_rows("kind", "old") == 6

    def test_drop_table_clears_statistics(self):
        db = build_db()
        db.execute("INSERT INTO trace VALUES (1, 'k', 'x')")
        assert db.statistics.table("trace") is not None
        db.execute("DROP TABLE trace")
        assert db.statistics.table("trace") is None


class TestEstimatesVsActuals:
    def test_equality_estimate_is_exact(self):
        db = InstantDB()
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, grp TEXT)")
        db.executemany("INSERT INTO t VALUES (?, ?)",
                       [(i, f"g{i % 5}") for i in range(1, 201)])
        stats = db.statistics.table("t")
        actual = len(db.execute("SELECT id FROM t WHERE grp = 'g1'").rows)
        assert stats.estimated_eq_rows("grp", "g1") == actual == 40

    def test_range_estimate_is_exact_at_small_ndv(self):
        db = InstantDB()
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, score INT)")
        db.executemany("INSERT INTO t VALUES (?, ?)",
                       [(i, i % 100) for i in range(1, 201)])
        stats = db.statistics.table("t")
        actual = len(db.execute(
            "SELECT id FROM t WHERE score >= 10 AND score < 20").rows)
        estimate = stats.estimated_range_rows("score", low=10, high=20,
                                              include_high=False)
        assert estimate == actual == 20

    def test_explain_shows_estimated_and_actual_rows(self):
        db = InstantDB()
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, grp TEXT)")
        db.executemany("INSERT INTO t VALUES (?, ?)",
                       [(i, f"g{i % 5}") for i in range(1, 201)])
        plain = "\n".join(r[0] for r in db.execute(
            "EXPLAIN SELECT id FROM t WHERE grp = 'g1'").rows)
        assert "est~" in plain
        analyzed = "\n".join(r[0] for r in db.execute(
            "EXPLAIN ANALYZE SELECT id FROM t WHERE grp = 'g1'").rows)
        assert "(rows=40)" in analyzed and "est~40" in analyzed


class TestPlanFlips:
    def build_skewed(self, hot_rows=150, rare_rows=50):
        db = InstantDB()
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, grp TEXT)")
        db.execute("CREATE INDEX idx_grp ON t (grp) USING hash")
        rows = [(i, "hot") for i in range(1, hot_rows + 1)]
        rows += [(hot_rows + i, f"rare-{i}") for i in range(1, rare_rows + 1)]
        db.executemany("INSERT INTO t VALUES (?, ?)", rows)
        return db

    def explain(self, db, sql):
        return "\n".join(r[0] for r in db.execute(f"EXPLAIN {sql}").rows)

    def test_selective_value_uses_the_index(self):
        db = self.build_skewed()
        text = self.explain(db, "SELECT id FROM t WHERE grp = 'rare-7'")
        assert "IndexScan" in text

    def test_dominant_value_flips_to_seq_scan(self):
        db = self.build_skewed()
        text = self.explain(db, "SELECT id FROM t WHERE grp = 'hot'")
        assert "SeqScan" in text
        assert "IndexScan" not in text

    def test_flip_happens_when_stats_cross_the_threshold(self):
        """The same query plans differently as inserts shift the frequency."""
        db = InstantDB()
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, grp TEXT)")
        db.execute("CREATE INDEX idx_grp ON t (grp) USING hash")
        db.executemany("INSERT INTO t VALUES (?, ?)",
                       [(i, f"g{i}") for i in range(1, 101)])   # all distinct
        sql = "SELECT id FROM t WHERE grp = 'g1'"
        assert "IndexScan" in self.explain(db, sql)
        # Flood the table with the probed value until it dominates.
        db.executemany("INSERT INTO t VALUES (?, ?)",
                       [(i, "g1") for i in range(101, 401)])
        assert "SeqScan" in self.explain(db, sql)

    def test_tiny_tables_keep_the_index_preference(self):
        """Below the small-table threshold estimates are noise; the
        historical index preference is kept."""
        db = InstantDB()
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, grp TEXT)")
        db.execute("CREATE INDEX idx_grp ON t (grp) USING hash")
        db.executemany("INSERT INTO t VALUES (?, ?)",
                       [(i, "same") for i in range(1, 11)])
        assert "IndexScan" in self.explain(db,
                                           "SELECT id FROM t WHERE grp = 'same'")

    def test_baseline_mode_keeps_heuristic_plans(self):
        db = InstantDB(read_path_optimizations=False)
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, grp TEXT)")
        db.execute("CREATE INDEX idx_grp ON t (grp) USING hash")
        db.executemany("INSERT INTO t VALUES (?, ?)",
                       [(i, "hot") for i in range(1, 201)])
        text = self.explain(db, "SELECT id FROM t WHERE grp = 'hot'")
        assert "IndexScan" in text             # no stats: legacy preference


class TestStatsSurviveRecovery:
    def test_checkpoint_close_reopen_recover_rebuilds_exactly(self, tmp_path):
        db = build_db(tmp_path)
        db.executemany("INSERT INTO trace VALUES (?, ?, ?)",
                       [(i, f"kind-{i % 3}", PARIS if i % 2 else LYON)
                        for i in range(1, 61)])
        db.advance_time(hours=2)               # mixed accuracy levels on disk
        before = db.statistics.table("trace")
        before_snapshot = (before.row_count, before.ndv("kind"),
                           before.ndv("location"),
                           before.estimated_eq_rows("location", "Paris"))
        db.close()

        db2 = build_db(tmp_path)
        db2.recover(drain=False)
        after = db2.statistics.table("trace")
        assert (after.row_count, after.ndv("kind"), after.ndv("location"),
                after.estimated_eq_rows("location", "Paris")) == before_snapshot

    def test_crash_without_checkpoint_still_rebuilds_from_recovered_rows(self, tmp_path):
        db = build_db(tmp_path)
        db.executemany("INSERT INTO trace VALUES (?, ?, ?)",
                       [(i, "k", PARIS) for i in range(1, 21)])
        db.daemon.pause()                      # crash: no close, no checkpoint

        db2 = build_db(tmp_path)
        db2.recover(drain=False)
        stats = db2.statistics.table("trace")
        assert stats.row_count == db2.row_count("trace") == 20
        assert stats.estimated_eq_rows("location", PARIS) == 20


class TestRegistry:
    def test_hooks_ignore_unregistered_tables(self):
        registry = StatisticsRegistry()
        registry.on_insert("ghost", {"a": 1})
        registry.on_remove("ghost", {"a": 1})
        registry.on_value_change("ghost", "a", 1, 2)
        assert registry.table("ghost") is None


class TestHistograms:
    """Equi-width histograms take over range estimation past the exact-NDV
    limit, where uniform min/max interpolation is badly wrong for skew."""

    def build_skewed(self):
        # 90% of values cluster near zero; a sparse tail stretches to 50M.
        stats = ColumnStatistics()
        for value in range(4500):
            stats.add(value)
        for j in range(1, 501):
            stats.add(100_000 * j)
        assert stats.ndv > 4096                # past EXACT_RANGE_NDV_LIMIT
        return stats

    def test_histogram_beats_uniform_interpolation_on_skew(self):
        stats = self.build_skewed()
        lo, hi = 0, 781_250                    # first of 64 equi-width buckets
        truth = (4500 + 7) / 5000              # cluster + tail values <= hi
        estimate = stats.range_fraction(low=lo, high=hi)
        uniform = (hi - lo) / (stats.max_value - stats.min_value)
        assert abs(estimate - truth) < 0.05
        assert abs(uniform - truth) > 0.5      # what the old estimator said

    def test_tail_range_not_overestimated(self):
        stats = self.build_skewed()
        estimate = stats.range_fraction(low=40_000_000, high=50_000_000)
        truth = 101 / 5000                     # tail only
        assert abs(estimate - truth) < 0.05

    def test_histogram_cache_invalidated_by_mutation(self):
        stats = self.build_skewed()
        stats.range_fraction(low=0, high=1000)
        assert stats._hist is not None
        stats.add(123_456_789)
        assert stats._hist is None             # rebuilt on next estimate
        stats.range_fraction(low=0, high=1000)
        assert stats._hist is not None
        stats.remove(123_456_789)
        assert stats._hist is None

    def test_non_numeric_columns_skip_the_histogram(self):
        stats = ColumnStatistics()
        for i in range(5000):
            stats.add(f"v{i}")
        assert stats.range_fraction(low="a", high="z") > 0.0
        assert stats._hist in (None, ())

    def test_explain_estimate_tracks_skew(self):
        """End to end: est~ on a skewed wide-NDV range predicate lands within
        2x of the actual cardinality (uniform interpolation was ~60x off)."""
        import re
        db = InstantDB()
        db.execute("CREATE TABLE skew (id INT PRIMARY KEY, v INT)")
        rows = [(i + 1, i) for i in range(4500)]
        rows += [(4500 + j, 100_000 * j) for j in range(1, 501)]
        db.executemany("INSERT INTO skew VALUES (?, ?)", rows)
        sql = "SELECT id FROM skew WHERE v BETWEEN 0 AND 781250"
        actual = len(db.execute(sql).rows)
        text = "\n".join(r[0] for r in db.execute(f"EXPLAIN {sql}").rows)
        estimates = [int(n) for n in re.findall(r"est~(\d+)", text)]
        assert estimates, text
        estimate = min(estimates)              # the filtered cardinality
        assert actual / 2 <= estimate <= actual * 2, (estimate, actual)
