"""Tests for the SQL tokenizer."""

import pytest

from repro.core.errors import ParseError
from repro.query.tokens import TokenType, tokenize


def kinds(sql):
    return [token.token_type for token in tokenize(sql)]


def values(sql):
    return [token.value for token in tokenize(sql)[:-1]]


class TestTokenizer:
    def test_simple_select(self):
        tokens = tokenize("SELECT * FROM person")
        assert values("SELECT * FROM person") == ["SELECT", "*", "FROM", "person"]
        assert tokens[-1].token_type is TokenType.EOF

    def test_keywords_are_case_insensitive(self):
        assert values("select foo") == ["SELECT", "foo"]

    def test_identifiers_keep_case(self):
        assert values("SELECT Location") == ["SELECT", "Location"]

    def test_string_literal(self):
        tokens = tokenize("WHERE name = 'Alice'")
        literal = [t for t in tokens if t.token_type is TokenType.STRING][0]
        assert literal.value == "Alice"

    def test_string_with_escaped_quote(self):
        tokens = tokenize("SELECT 'it''s fine'")
        literal = [t for t in tokens if t.token_type is TokenType.STRING][0]
        assert literal.value == "it's fine"

    def test_unterminated_string_raises(self):
        with pytest.raises(ParseError):
            tokenize("SELECT 'oops")

    def test_numbers(self):
        tokens = tokenize("LIMIT 10 OFFSET 2.5")
        numbers = [t.value for t in tokens if t.token_type is TokenType.NUMBER]
        assert numbers == ["10", "2.5"]

    def test_operators(self):
        operators = [t.value for t in tokenize("a <= 1 AND b != 2 AND c <> 3")
                     if t.token_type is TokenType.OPERATOR]
        assert operators == ["<=", "!=", "<>"]

    def test_punctuation_and_qualified_names(self):
        assert values("p.location") == ["p", ".", "location"]

    def test_line_comment_skipped(self):
        assert values("SELECT 1 -- this is a comment\n") == ["SELECT", "1"]

    def test_unexpected_character_raises(self):
        with pytest.raises(ParseError):
            tokenize("SELECT @foo")

    def test_like_pattern_with_percent(self):
        tokens = tokenize("WHERE location LIKE '%FRANCE%'")
        literal = [t for t in tokens if t.token_type is TokenType.STRING][0]
        assert literal.value == "%FRANCE%"
