"""The compiled read path: closures, pruning, index-only scans, streaming.

Covers the PR-5 overhaul end to end:

* prepared-statement re-execution performs **zero** predicate compilation
  (``StatementCacheStats.predicate_compiles`` / ``predicate_compile_hits``,
  the plan-cache analogue of the WAL's payload cache counters);
* compiled and interpreted modes produce identical results across the SQL
  surface (the baseline engine is the proof harness);
* the planner's column pruning reaches the store (subset decode) and the
  scan's visible rows;
* covering queries run as index-only scans over GT and B+-tree entries with
  zero heap reads;
* LIMIT over an index range streams B+-tree entries (O(k) index work);
* hash-join key extractors normalize unhashable degraded values once per row.
"""

import pytest

from repro import InstantDB
from repro.core.errors import GeneralizationError
from repro.core.generalization import GeneralizationScheme
from repro.core.values import SUPPRESSED


def make_stable_db(optimized=True, rows=200):
    db = InstantDB(read_path_optimizations=optimized)
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, grp TEXT, val INT, "
               "note TEXT)")
    db.executemany(
        "INSERT INTO t VALUES (?, ?, ?, ?)",
        [(i, f"g{i % 5}", (i * 7) % 101, f"note-{i}") for i in range(1, rows + 1)])
    return db


class TestZeroRecompilation:
    def test_prepared_reexecution_compiles_once(self):
        db = make_stable_db()
        sql = "SELECT id FROM t WHERE grp = 'g1' AND val > 50"
        db.execute(sql)
        stats = db.statements.stats
        assert stats.predicate_compiles == 1
        assert stats.predicate_compile_hits == 0
        for _ in range(5):
            db.execute(sql)
        assert stats.predicate_compiles == 1          # never recompiled
        assert stats.predicate_compile_hits == 5

    def test_catalog_change_invalidates_and_recompiles_once(self):
        db = make_stable_db()
        sql = "SELECT id FROM t WHERE val > 50"
        db.execute(sql)
        db.execute("CREATE INDEX idx_val ON t (val) USING btree")
        db.execute(sql)                               # replanned + recompiled
        db.execute(sql)                               # cached again
        assert db.statements.stats.predicate_compiles == 2
        assert db.statements.stats.predicate_compile_hits == 1


class TestCompiledMatchesInterpreted:
    QUERIES = [
        "SELECT id, val FROM t WHERE grp = 'g1' AND val > 50",
        "SELECT id FROM t WHERE note LIKE 'note-1%'",
        "SELECT id FROM t WHERE val BETWEEN 10 AND 30 ORDER BY id",
        "SELECT id FROM t WHERE grp IN ('g1', 'g2') AND NOT val >= 90",
        "SELECT id FROM t WHERE grp = 'g1' OR val < 5",
        "SELECT grp, COUNT(*) AS n, AVG(val) AS a FROM t GROUP BY grp "
        "HAVING n > 10 ORDER BY grp",
        "SELECT id, val FROM t ORDER BY val DESC, id ASC LIMIT 7",
        "SELECT * FROM t WHERE id = 42",
    ]

    def test_same_results_across_the_sql_surface(self):
        compiled = make_stable_db(True)
        interpreted = make_stable_db(False)
        for sql in self.QUERIES:
            left = compiled.execute(sql)
            right = interpreted.execute(sql)
            assert left.columns == right.columns, sql
            assert sorted(map(repr, left.rows)) == sorted(map(repr, right.rows)), sql

    def test_join_results_match(self):
        for optimized in (True, False):
            db = make_stable_db(optimized, rows=50)
            db.execute("CREATE TABLE team (tid INT PRIMARY KEY, city TEXT)")
            db.executemany("INSERT INTO team VALUES (?, ?)",
                           [(i, f"city-{i}") for i in range(1, 11)])
            result = db.execute(
                "SELECT t.id, team.city FROM t JOIN team ON t.id = team.tid")
            assert sorted(result.rows) == [(i, f"city-{i}") for i in range(1, 11)]


class TestColumnPruning:
    def test_planner_computes_the_needed_set(self):
        db = make_stable_db()
        plan = db.planner.plan_physical(
            db.prepare("SELECT id FROM t WHERE val > 50 ORDER BY id").statement)
        assert plan.base.needed_columns == ("id", "val")

    def test_select_star_decodes_everything(self):
        db = make_stable_db()
        plan = db.planner.plan_physical(db.prepare("SELECT * FROM t").statement)
        assert plan.base.needed_columns is None

    def test_store_subset_read_skips_unrequested_columns(self):
        db = make_stable_db()
        store = db.table_store("t")
        row = store.read(1, columns=frozenset(["grp"]))
        assert row.values == {"grp": "g1"}
        full = store.read(1)
        assert set(full.values) == {"id", "grp", "val", "note"}

    def test_pruned_query_returns_the_same_rows(self):
        db = make_stable_db()
        baseline = make_stable_db(False)
        sql = "SELECT grp, val FROM t WHERE id <= 10"
        assert db.execute(sql).rows == baseline.execute(sql).rows

    def test_row_key_only_queries_decode_no_values(self):
        db = make_stable_db()
        plan = db.planner.plan_physical(
            db.prepare("SELECT COUNT(*) AS n FROM t").statement)
        assert plan.base.needed_columns == ()
        assert db.execute("SELECT COUNT(*) AS n FROM t").rows == [(200,)]


class TestIndexOnlyScans:
    def make_indexed(self):
        db = make_stable_db()
        db.execute("CREATE INDEX idx_val ON t (val) USING btree")
        return db

    def test_covering_range_query_skips_the_heap(self):
        db = self.make_indexed()
        explain = "\n".join(r[0] for r in db.execute(
            "EXPLAIN SELECT val FROM t WHERE val BETWEEN 10 AND 20").rows)
        assert "IndexOnlyScan" in explain
        store = db.table_store("t")
        reads_before = store.stats.reads
        result = db.execute("SELECT val FROM t WHERE val BETWEEN 10 AND 20")
        assert store.stats.reads == reads_before      # zero heap fetches
        assert db.executor.stats.index_only_scans > 0
        expected = sorted(v for v in ((i * 7) % 101 for i in range(1, 201))
                          if 10 <= v <= 20)
        assert sorted(row[0] for row in result.rows) == expected

    def test_non_covering_query_still_fetches_the_heap(self):
        db = self.make_indexed()
        explain = "\n".join(r[0] for r in db.execute(
            "EXPLAIN SELECT id, val FROM t WHERE val BETWEEN 10 AND 20").rows)
        assert "IndexOnlyScan" not in explain
        assert "IndexRangeScan" in explain

    def test_covering_aggregate_over_equality_probe(self):
        db = self.make_indexed()
        explain = "\n".join(r[0] for r in db.execute(
            "EXPLAIN SELECT COUNT(*) AS n FROM t WHERE val = 7").rows)
        assert "IndexOnlyScan" in explain
        baseline = make_stable_db(False)
        baseline.execute("CREATE INDEX idx_val ON t (val) USING btree")
        assert db.execute("SELECT COUNT(*) AS n FROM t WHERE val = 7").rows == \
            baseline.execute("SELECT COUNT(*) AS n FROM t WHERE val = 7").rows

    def test_demanded_accuracy_on_other_columns_blocks_index_only(self):
        """Visibility exclusion needs per-row levels from the heap, so a
        degradable column with a demanded level disables the heap skip."""
        from repro import AttributeLCP
        from repro.core.domains import build_location_tree
        db = InstantDB()
        location = db.register_domain(build_location_tree())
        db.register_policy(AttributeLCP(location,
                                        transitions=["1 h", "1 d", "1 month", "3 months"],
                                        name="location_lcp"))
        db.execute("CREATE TABLE p (id INT PRIMARY KEY, location TEXT "
                   "DEGRADABLE DOMAIN location POLICY location_lcp)")
        db.execute("CREATE INDEX idx_id ON p (id) USING btree")
        db.executemany("INSERT INTO p VALUES (?, ?)",
                       [(i, "1 Main Street, Paris") for i in range(1, 100)])
        explain = "\n".join(r[0] for r in db.execute(
            "EXPLAIN SELECT id FROM p WHERE id BETWEEN 5 AND 90").rows)
        assert "IndexOnlyScan" not in explain

    def test_gt_covering_probe_is_index_only(self):
        from repro import AttributeLCP
        from repro.core.domains import build_location_tree
        db = InstantDB()
        location = db.register_domain(build_location_tree())
        db.register_policy(AttributeLCP(location,
                                        transitions=["1 h", "1 d", "1 month", "3 months"],
                                        name="location_lcp"))
        db.execute("CREATE TABLE p (id INT PRIMARY KEY, location TEXT "
                   "DEGRADABLE DOMAIN location POLICY location_lcp)")
        db.execute("CREATE INDEX idx_loc ON p (location) USING gt")
        db.executemany(
            "INSERT INTO p VALUES (?, ?)",
            [(i, "1 Main Street, Paris" if i % 2 else "2 Station Road, Lyon")
             for i in range(1, 101)])
        db.advance_time(hours=2)               # everything at city level
        db.execute("DECLARE PURPOSE stat SET ACCURACY LEVEL city "
                   "FOR p.location")
        explain = "\n".join(r[0] for r in db.execute(
            "EXPLAIN SELECT location FROM p WHERE location = 'Paris'",
            purpose="stat").rows)
        assert "IndexOnlyScan" in explain
        store = db.table_store("p")
        reads_before = store.stats.reads
        result = db.execute("SELECT location FROM p WHERE location = 'Paris'",
                            purpose="stat")
        assert store.stats.reads == reads_before
        assert result.rows == [("Paris",)] * 50


class TestStreamedIndexRange:
    def test_limit_over_range_does_bounded_index_work(self):
        db = make_stable_db(rows=2000)
        db.execute("CREATE INDEX idx_id ON t (id) USING btree")
        index = db.catalog.index("t", "idx_id").index
        index.stats.reset()
        result = db.execute(
            "SELECT id, grp FROM t WHERE id BETWEEN 1 AND 500 LIMIT 5")
        assert len(result.rows) == 5
        # O(k), not O(range): one fetch chunk of entries, not 1500.
        assert 0 < index.stats.entries_scanned <= 32
        store = db.table_store("t")
        # Heap reads are likewise bounded by the first fetch chunk.
        assert db.executor.last_pipeline.find("IndexScan").stats.rows_out == 5


class TestHashJoinCompiledKeys:
    class ListScheme(GeneralizationScheme):
        """Degrades scalars into *lists* — an unhashable visible value."""

        name = "listy"

        @property
        def num_levels(self):
            return 3

        def generalize(self, value, to_level, from_level=0):
            if to_level == self.max_level:
                return SUPPRESSED
            if to_level == 0:
                return value
            return ["bucket", str(value)[:1].lower()]

    def make_listy_db(self):
        from repro import AttributeLCP
        db = InstantDB()
        db.register_domain(self.ListScheme(), name="listy")
        db.register_policy(AttributeLCP(self.ListScheme(),
                                        transitions=["1 h", "1 d"],
                                        name="listy_lcp"))
        db.execute("CREATE TABLE a (id INT PRIMARY KEY, tag TEXT "
                   "DEGRADABLE DOMAIN listy POLICY listy_lcp)")
        db.execute("CREATE TABLE b (bid INT PRIMARY KEY, tag TEXT "
                   "DEGRADABLE DOMAIN listy POLICY listy_lcp)")
        db.executemany("INSERT INTO a VALUES (?, ?)",
                       [(1, "alpha"), (2, "beta"), (3, "avocado")])
        db.executemany("INSERT INTO b VALUES (?, ?)",
                       [(10, "apple"), (11, "banana")])
        db.execute("DECLARE PURPOSE coarse SET ACCURACY LEVEL level1 "
                   "FOR a.tag, level1 FOR b.tag")
        return db

    def test_join_on_list_typed_degraded_values(self):
        """Regression: the compiled key extractor normalizes unhashable
        degraded values (lists) instead of crashing in the hash probe."""
        db = self.make_listy_db()
        result = db.execute(
            "SELECT a.id, b.bid FROM a JOIN b ON a.tag = b.tag",
            purpose="coarse")
        # 'alpha'/'avocado' → ['bucket','a'] matches 'apple'; 'beta' matches
        # 'banana'.
        assert sorted(result.rows) == [(1, 10), (2, 11), (3, 10)]


class TestExplainShape:
    def test_explain_has_estimates_and_index_only_node(self):
        db = make_stable_db()
        db.execute("CREATE INDEX idx_val ON t (val) USING btree")
        lines = [r[0] for r in db.execute(
            "EXPLAIN SELECT val FROM t WHERE val BETWEEN 10 AND 20 LIMIT 3").rows]
        text = "\n".join(lines)
        assert "IndexOnlyScan" in text
        assert "est~" in text

    def test_explain_analyze_shows_estimate_vs_actual(self):
        db = make_stable_db()
        text = "\n".join(r[0] for r in db.execute(
            "EXPLAIN ANALYZE SELECT id FROM t WHERE grp = 'g1'").rows)
        assert "(rows=" in text and "(est~" in text
