"""Tests for the SQL parser, including the paper's privacy extensions."""

import pytest

from repro.core.errors import ParseError
from repro.query import ast_nodes as ast
from repro.query.parser import parse, parse_script


class TestCreateTable:
    def test_basic(self):
        statement = parse("CREATE TABLE person (id INT PRIMARY KEY, name TEXT)")
        assert isinstance(statement, ast.CreateTable)
        assert statement.table == "person"
        assert statement.columns[0].primary_key
        assert statement.columns[1].type_name == "TEXT"

    def test_degradable_column_with_domain_and_policy(self):
        statement = parse(
            "CREATE TABLE person (location TEXT DEGRADABLE DOMAIN location "
            "POLICY location_lcp, salary INT NOT NULL)"
        )
        location = statement.columns[0]
        assert location.degradable and location.domain == "location"
        assert location.policy == "location_lcp"
        assert statement.columns[1].not_null

    def test_create_index(self):
        statement = parse("CREATE INDEX idx_loc ON person (location) USING gt")
        assert isinstance(statement, ast.CreateIndex)
        assert statement.method == "gt"
        default = parse("CREATE INDEX idx_id ON person (id)")
        assert default.method == "btree"

    def test_drop_table(self):
        statement = parse("DROP TABLE person")
        assert isinstance(statement, ast.DropTable)


class TestInsert:
    def test_insert_positional(self):
        statement = parse("INSERT INTO person VALUES (1, 'alice', 2500.5, NULL, TRUE)")
        assert statement.columns is None
        assert statement.rows == ((1, "alice", 2500.5, None, True),)

    def test_insert_with_columns_and_multiple_rows(self):
        statement = parse(
            "INSERT INTO person (id, name) VALUES (1, 'a'), (2, 'b')"
        )
        assert statement.columns == ("id", "name")
        assert len(statement.rows) == 2

    def test_negative_number(self):
        statement = parse("INSERT INTO t VALUES (-5)")
        assert statement.rows == ((-5,),)

    def test_missing_values_keyword(self):
        with pytest.raises(ParseError):
            parse("INSERT INTO t (1, 2)")


class TestSelect:
    def test_star(self):
        statement = parse("SELECT * FROM person")
        assert isinstance(statement.items[0], ast.Star)
        assert statement.table == "person"

    def test_columns_and_alias(self):
        statement = parse("SELECT id, name AS who FROM person p")
        assert statement.table_alias == "p"
        assert statement.items[1].alias == "who"

    def test_where_with_and_or(self):
        statement = parse(
            "SELECT * FROM person WHERE location LIKE '%FRANCE%' AND salary = '2000-3000'"
        )
        assert isinstance(statement.where, ast.BooleanOp)
        assert statement.where.operator == "AND"
        like = statement.where.operands[0]
        assert isinstance(like, ast.Comparison) and like.operator == "LIKE"

    def test_paper_example_query_parses(self):
        statement = parse(
            "SELECT * FROM PERSON WHERE LOCATION LIKE '%FRANCE%' AND SALARY = '2000-3000'"
        )
        assert statement.table == "PERSON"

    def test_in_between_isnull_not(self):
        statement = parse(
            "SELECT * FROM t WHERE a IN (1, 2, 3) AND b BETWEEN 1 AND 5 "
            "AND c IS NOT NULL AND NOT d = 1"
        )
        operands = statement.where.operands
        assert isinstance(operands[0], ast.InList)
        assert isinstance(operands[1], ast.Between)
        assert isinstance(operands[2], ast.IsNull) and operands[2].negated
        assert isinstance(operands[3], ast.Not)

    def test_not_in_and_not_like(self):
        statement = parse("SELECT * FROM t WHERE a NOT IN (1) AND b NOT LIKE 'x%'")
        assert statement.where.operands[0].negated
        assert isinstance(statement.where.operands[1], ast.Not)

    def test_group_by_having_order_limit(self):
        statement = parse(
            "SELECT location, COUNT(*) AS n FROM person GROUP BY location "
            "HAVING n > 2 ORDER BY location DESC LIMIT 5"
        )
        assert statement.group_by[0].column == "location"
        assert statement.having is not None
        assert statement.order_by[0].descending
        assert statement.limit == 5
        assert statement.is_aggregate

    def test_aggregates(self):
        statement = parse("SELECT COUNT(*), AVG(salary), MIN(p.salary) FROM person p")
        functions = [item.expression.function for item in statement.items]
        assert functions == ["COUNT", "AVG", "MIN"]
        assert statement.items[0].expression.argument is None

    def test_count_distinct(self):
        statement = parse("SELECT COUNT(DISTINCT user_id) FROM person")
        assert statement.items[0].expression.distinct

    def test_join(self):
        statement = parse(
            "SELECT * FROM person p JOIN city c ON p.city_id = c.id WHERE c.name = 'Paris'"
        )
        assert len(statement.joins) == 1
        join = statement.joins[0]
        assert join.table == "city" and join.alias == "c"
        assert join.left.qualified == "p.city_id"

    def test_left_join(self):
        statement = parse("SELECT * FROM a LEFT JOIN b ON a.x = b.x")
        assert statement.joins[0].kind == "left"

    def test_non_equi_join_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM a JOIN b ON a.x < b.x")

    def test_explain(self):
        statement = parse("EXPLAIN SELECT * FROM person")
        assert isinstance(statement, ast.Explain)
        assert isinstance(statement.statement, ast.Select)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM person garbage garbage garbage )")


class TestUpdateDelete:
    def test_update(self):
        statement = parse("UPDATE person SET name = 'bob', salary = 100 WHERE id = 1")
        assert statement.assignments == (("name", "bob"), ("salary", 100))
        assert isinstance(statement.where, ast.Comparison)

    def test_delete(self):
        statement = parse("DELETE FROM person WHERE location = 'Paris'")
        assert isinstance(statement, ast.Delete)
        assert statement.table == "person"

    def test_delete_without_where(self):
        assert parse("DELETE FROM person").where is None


class TestDeclarePurpose:
    def test_paper_example(self):
        statement = parse(
            "DECLARE PURPOSE STAT SET ACCURACY LEVEL COUNTRY FOR P.LOCATION, "
            "RANGE1000 FOR P.SALARY"
        )
        assert isinstance(statement, ast.DeclarePurpose)
        assert statement.name == "STAT"
        assert len(statement.clauses) == 2
        assert statement.clauses[0].level == "COUNTRY"
        assert statement.clauses[0].table == "p"
        assert statement.clauses[1].column == "salary"

    def test_numeric_level(self):
        statement = parse("DECLARE PURPOSE x SET ACCURACY LEVEL 2 FOR person.location")
        assert statement.clauses[0].level == 2

    def test_unqualified_column_rejected(self):
        with pytest.raises(ParseError):
            parse("DECLARE PURPOSE x SET ACCURACY LEVEL city FOR location")

    def test_purpose_without_clauses(self):
        statement = parse("DECLARE PURPOSE audit")
        assert statement.clauses == ()


class TestScripts:
    def test_parse_script_multiple_statements(self):
        statements = parse_script(
            "CREATE TABLE t (id INT); INSERT INTO t VALUES (1); SELECT * FROM t;"
        )
        assert [type(s).__name__ for s in statements] == [
            "CreateTable", "Insert", "Select",
        ]

    def test_unsupported_statement(self):
        with pytest.raises(ParseError):
            parse("GRANT ALL TO bob")
