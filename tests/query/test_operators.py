"""Streaming operator pipeline: early exit, Top-N, joins, EXPLAIN, cursors."""

import pytest

import repro
from repro import InstantDB


@pytest.fixture
def db():
    db = InstantDB()
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, grp TEXT, val INT)")
    db.executemany("INSERT INTO t VALUES (?, ?, ?)",
                   [(i, f"g{i % 5}", (i * 7) % 101) for i in range(1, 501)])
    return db


class TestLimitEarlyExit:
    def test_limit_pulls_only_k_rows_past_the_scan(self, db):
        result = db.execute("SELECT id FROM t LIMIT 5")
        assert result.rows == [(1,), (2,), (3,), (4,), (5,)]
        scan = result.pipeline.find("SeqScan")
        # O(k), not O(n): the scan produced exactly the 5 rows Limit pulled.
        assert scan.stats.rows_out == 5

    def test_limit_with_filter_stops_at_k_matches(self, db):
        result = db.execute("SELECT id FROM t WHERE grp = 'g1' LIMIT 3")
        assert len(result.rows) == 3
        scan = result.pipeline.find("SeqScan")
        # The scan ran only until the filter let 3 rows through (ids 1, 6, 11).
        assert scan.stats.rows_out == 11
        assert result.pipeline.find("Filter").stats.rows_out == 3

    def test_limit_zero_produces_nothing_and_pulls_nothing(self, db):
        result = db.execute("SELECT id FROM t LIMIT 0")
        assert result.rows == []
        assert result.pipeline.find("SeqScan").stats.rows_out == 0

    def test_limit_larger_than_table(self, db):
        result = db.execute("SELECT id FROM t LIMIT 10000")
        assert len(result.rows) == 500


class TestTopN:
    def test_order_by_limit_uses_bounded_heap(self, db):
        result = db.execute("SELECT id, val FROM t ORDER BY val DESC LIMIT 5")
        topn = result.pipeline.find("TopN")
        assert topn is not None
        assert result.pipeline.find("Sort") is None
        # The heap never held more than n rows while consuming all 500.
        assert topn.max_held == 5

    def test_topn_matches_full_sort(self, db):
        limited = db.execute("SELECT id, val FROM t ORDER BY val DESC, id ASC LIMIT 7")
        full = db.execute("SELECT id, val FROM t ORDER BY val DESC, id ASC")
        assert limited.rows == full.rows[:7]

    def test_topn_is_stable_like_a_full_sort(self, db):
        limited = db.execute("SELECT grp, id FROM t ORDER BY grp LIMIT 10")
        full = db.execute("SELECT grp, id FROM t ORDER BY grp")
        assert limited.rows == full.rows[:10]

    def test_order_by_without_limit_uses_full_sort(self, db):
        result = db.execute("SELECT id, val FROM t ORDER BY val")
        assert result.pipeline.find("Sort") is not None
        assert result.pipeline.find("TopN") is None


class TestResidualFilterExecution:
    def test_index_probe_skips_covered_conjunct(self, db):
        db.execute("CREATE INDEX idx_grp ON t (grp) USING hash")
        result = db.execute("SELECT id FROM t WHERE grp = 'g1' AND val > 50")
        scan = result.pipeline.find("IndexScan")
        assert scan is not None
        assert scan.stats.rows_out == 100        # only the g1 partition
        filter_op = result.pipeline.find("Filter")
        assert "val > 50" in filter_op.describe()
        assert "grp" not in filter_op.describe()
        # Same answer as the sequential plan evaluating the full predicate.
        expected = {(i,) for i in range(1, 501)
                    if i % 5 == 1 and (i * 7) % 101 > 50}
        assert set(result.rows) == expected

    def test_fully_covered_where_needs_no_filter_operator(self, db):
        db.execute("CREATE INDEX idx_grp ON t (grp) USING hash")
        result = db.execute("SELECT id FROM t WHERE grp = 'g2'")
        assert result.pipeline.find("Filter") is None
        assert len(result.rows) == 100

    def test_range_scan_excludes_null_values(self, db):
        db.execute("CREATE TABLE n (id INT PRIMARY KEY, v INT)")
        db.execute("CREATE INDEX idx_v ON n (v) USING btree")
        db.executemany("INSERT INTO n VALUES (?, ?)",
                       [(1, 10), (2, None), (3, 30)])
        result = db.execute("SELECT id FROM n WHERE v >= 5")
        assert sorted(result.rows) == [(1,), (3,)]


class TestHashJoin:
    def setup_join(self, db, rows):
        db.execute("CREATE TABLE team (tid INT PRIMARY KEY, city TEXT)")
        if rows:
            db.executemany("INSERT INTO team VALUES (?, ?)", rows)

    def test_inner_join(self, db):
        self.setup_join(db, [(1, "paris"), (2, "lyon")])
        result = db.execute(
            "SELECT t.id, team.city FROM t JOIN team ON t.id = team.tid")
        assert sorted(result.rows) == [(1, "paris"), (2, "lyon")]

    def test_left_join_pads_missing_matches(self, db):
        self.setup_join(db, [(1, "paris")])
        result = db.execute(
            "SELECT t.id, team.city FROM t LEFT JOIN team ON t.id = team.tid "
            "WHERE t.id <= 2 ORDER BY t.id")
        from repro.core.values import NULL
        assert result.rows == [(1, "paris"), (2, NULL)]

    def test_left_join_against_empty_right_table_pads_all_columns(self, db):
        """Regression: the padded NULL columns must come from the catalog
        schema, not from the (absent) first right row."""
        self.setup_join(db, [])
        result = db.execute(
            "SELECT * FROM t LEFT JOIN team ON t.id = team.tid LIMIT 2")
        assert result.columns == ["id", "grp", "val", "team.tid", "team.city"]
        from repro.core.values import NULL
        for row in result.rows:
            assert row[3] is NULL and row[4] is NULL

    def test_left_join_empty_right_columns_usable_in_projection(self, db):
        self.setup_join(db, [])
        result = db.execute(
            "SELECT t.id, team.city FROM t LEFT JOIN team ON t.id = team.tid "
            "WHERE t.id = 1")
        from repro.core.values import NULL
        assert result.rows == [(1, NULL)]


class TestExplain:
    def test_explain_renders_operator_tree(self, db):
        db.execute("CREATE INDEX idx_grp ON t (grp) USING hash")
        result = db.execute(
            "EXPLAIN SELECT id FROM t WHERE grp = 'g1' AND val > 50 "
            "ORDER BY val DESC LIMIT 3")
        text = "\n".join(row[0] for row in result.rows)
        # Access path + residual + the operator stack, leaf to root.
        assert "IndexScan(idx_grp grp='g1')" in text
        assert "Filter (val > 50)" in text
        assert "TopN (n=3, by val DESC)" in text
        assert "Project (id)" in text

    def test_explain_first_line_keeps_access_path_summary(self, db):
        result = db.execute("EXPLAIN SELECT * FROM t WHERE val > 1")
        assert "SeqScan" in result.rows[0][0]

    def test_explain_does_not_execute(self, db):
        db.execute("EXPLAIN SELECT * FROM t")
        assert db.executor.stats.rows_scanned == 0

    def test_explain_analyze_reports_per_operator_rows(self, db):
        result = db.execute("EXPLAIN ANALYZE SELECT id FROM t LIMIT 5")
        text = "\n".join(row[0] for row in result.rows)
        assert "Limit (5) (rows=5)" in text
        assert "SeqScan on t as t (rows=5)" in text

    def test_explain_join_shows_hash_join(self, db):
        db.execute("CREATE TABLE team (tid INT PRIMARY KEY, city TEXT)")
        result = db.execute(
            "EXPLAIN SELECT t.id FROM t JOIN team ON t.id = team.tid")
        text = "\n".join(row[0] for row in result.rows)
        assert "HashJoin" in text


class TestStreamingCursor:
    def test_fetchone_pulls_lazily(self, db):
        conn = repro.connect(engine=db)
        cur = conn.cursor()
        cur.execute("SELECT id FROM t")
        assert cur.fetchone() == (1,)
        scan = db.executor.last_pipeline.find("SeqScan")
        # Only the primed first row crossed the scan, not all 500.
        assert scan.stats.rows_out == 1
        assert cur.fetchone() == (2,)
        assert scan.stats.rows_out == 2
        conn.rollback()

    def test_fetchmany_and_fetchall_drain_the_stream(self, db):
        conn = repro.connect(engine=db)
        cur = conn.cursor()
        cur.execute("SELECT id FROM t")
        first_batch = cur.fetchmany(10)
        assert [row[0] for row in first_batch] == list(range(1, 11))
        rest = cur.fetchall()
        assert len(rest) == 490
        assert cur.fetchone() is None
        conn.rollback()

    def test_cursor_iteration_streams(self, db):
        conn = repro.connect(engine=db)
        cur = conn.cursor()
        seen = []
        for row in cur.execute("SELECT id FROM t"):
            seen.append(row[0])
            if len(seen) == 3:
                break
        assert seen == [1, 2, 3]
        assert db.executor.last_pipeline.find("SeqScan").stats.rows_out == 3
        conn.rollback()

    def test_binding_errors_surface_at_execute_time(self, db):
        from repro.core.errors import BindingError
        conn = repro.connect(engine=db)
        cur = conn.cursor()
        with pytest.raises(BindingError):
            cur.execute("SELECT id FROM t WHERE ghost = 1")
        conn.rollback()

    def test_legacy_execute_still_materializes(self, db):
        result = db.execute("SELECT id FROM t")
        assert len(result.rows) == 500


class TestDMLThroughPipeline:
    def test_update_uses_access_path(self, db):
        db.execute("CREATE INDEX idx_grp ON t (grp) USING hash")
        before = db.executor.stats.index_lookups
        count = db.execute("UPDATE t SET val = 0 WHERE grp = 'g3'")
        assert count == 100
        assert db.executor.stats.index_lookups > before

    def test_delete_with_residual_predicate(self, db):
        deleted = db.execute("DELETE FROM t WHERE grp = 'g4' AND id < 50")
        assert deleted == 10
        assert db.row_count("t") == 490


class TestNullRangeBounds:
    """A NULL range bound must not be consumed by the index access path."""

    def setup_indexed(self, db):
        db.execute("CREATE TABLE r (id INT PRIMARY KEY, x INT)")
        db.execute("CREATE INDEX idx_x ON r (x) USING btree")
        db.executemany("INSERT INTO r VALUES (?, ?)", [(i, i) for i in range(1, 6)])

    def test_null_lower_bound_yields_empty_result(self, db):
        self.setup_indexed(db)
        result = db.execute("SELECT id FROM r WHERE x > ? AND x < ?",
                            params=(None, 4))
        assert result.rows == []          # same as the unindexed evaluation

    def test_null_between_bound_yields_empty_result(self, db):
        self.setup_indexed(db)
        result = db.execute("SELECT id FROM r WHERE x BETWEEN ? AND ?",
                            params=(None, 4))
        assert result.rows == []

    def test_null_bound_does_not_feed_destructive_dml(self, db):
        self.setup_indexed(db)
        deleted = db.execute("DELETE FROM r WHERE x > ? AND x < ?",
                             params=(None, 4))
        assert deleted == 0
        assert db.row_count("r") == 5

    def test_non_null_bounds_still_use_the_index(self, db):
        self.setup_indexed(db)
        result = db.execute("SELECT id FROM r WHERE x > 1 AND x < 4")
        assert sorted(result.rows) == [(2,), (3,)]
        assert result.pipeline.find("IndexScan") is not None


class TestStreamIsolation:
    """Partially-fetched streams settle before the transaction ends."""

    def test_commit_materializes_pending_stream_rows(self, db):
        conn = repro.connect(engine=db)
        cur = conn.cursor()
        cur.execute("SELECT id FROM t WHERE id <= 10")
        assert cur.fetchone() == (1,)
        conn.commit()                      # read locks released here
        # A writer mutates the scanned table after the commit...
        writer = repro.connect(engine=db)
        writer.execute("DELETE FROM t WHERE id <= 10")
        # ...but the cursor's remaining rows reflect its own snapshot.
        rest = cur.fetchall()
        assert [row[0] for row in rest] == list(range(2, 11))
        writer.rollback()
        conn.close()

    def test_rollback_also_settles_streams(self, db):
        conn = repro.connect(engine=db)
        cur = conn.cursor()
        cur.execute("SELECT id FROM t WHERE id <= 5")
        conn.rollback()
        assert len(cur.fetchall()) == 5
        conn.close()


class TestExplainAnalyzeLocking:
    def test_explain_analyze_blocks_on_a_concurrent_writer(self, db):
        from repro.core.errors import TransactionAborted
        writer = db.begin()
        db.execute("UPDATE t SET val = 99 WHERE id = 1", txn=writer)
        with pytest.raises(TransactionAborted):
            db.execute("EXPLAIN ANALYZE SELECT id FROM t LIMIT 1")
        db.rollback(writer)

    def test_plain_explain_needs_no_locks(self, db):
        writer = db.begin()
        db.execute("UPDATE t SET val = 99 WHERE id = 1", txn=writer)
        result = db.execute("EXPLAIN SELECT id FROM t")
        assert "SeqScan" in result.rows[0][0]
        db.rollback(writer)
