"""Columnar segments and vectorized batch execution.

Covers the columnar read path end to end:

* vectorized execution produces results identical to the compiled row path
  and to the interpreted baseline across the SQL surface (the equivalence
  harness of ``test_compiled_read_path``, re-run over segments);
* the planner only picks ``ColumnarScan`` for sequential scans of
  columnarized tables on the optimized engine — the interpreted baseline
  never sees a columnar plan;
* zone maps prune segments that cannot match a residual range or equality
  predicate, and pruning is restricted to non-degradable columns;
* the segment mirror is maintained by the store's mutation hooks, so data
  changed after ``columnarize()`` stays visible;
* degradable columns round-trip through the value/level vectors with
  sentinel *identity* (``is SUPPRESSED``) and the paper's exclusion
  semantics (stored level coarser than demanded hides the row);
* parameterized plans re-bind into vectorized form;
* ORDER BY columns that are not in the output list sort correctly and stay
  out of the result (the hidden-sort-column fix), in every execution mode.
"""

import pytest

from repro import AttributeLCP, InstantDB
from repro.core.domains import build_location_tree, build_salary_ranges
from repro.core.errors import BindingError
from repro.core.values import SUPPRESSED
from repro.query.operators import BatchFilter, BatchProject, ColumnarScan

PARIS = "1 Main Street, Paris"
LYON = "2 Station Road, Lyon"


def make_stable_db(optimized=True, rows=200, columnar=False):
    db = InstantDB(read_path_optimizations=optimized)
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, grp TEXT, val INT, "
               "note TEXT)")
    db.executemany(
        "INSERT INTO t VALUES (?, ?, ?, ?)",
        [(i, f"g{i % 5}", (i * 7) % 101, f"note-{i}") for i in range(1, rows + 1)])
    if columnar:
        db.columnarize("t")
    return db


def make_degradable_db(columnar=False):
    db = InstantDB()
    location = db.register_domain(build_location_tree())
    salary = db.register_domain(build_salary_ranges())
    db.register_policy(AttributeLCP(
        location, transitions=["1 h", "1 d", "1 month", "3 months"],
        name="location_lcp"))
    # A slow second policy keeps tuples alive once location is suppressed.
    db.register_policy(AttributeLCP(salary, states=[0, 1],
                                    transitions=["12 months"],
                                    name="slow_lcp"))
    db.execute("CREATE TABLE visits (id INT PRIMARY KEY, location TEXT "
               "DEGRADABLE DOMAIN location POLICY location_lcp, "
               "salary INT DEGRADABLE DOMAIN salary POLICY slow_lcp, "
               "note TEXT)")
    db.executemany("INSERT INTO visits VALUES (?, ?, ?, ?)",
                   [(i, PARIS if i % 2 else LYON, 1000 + i, f"n-{i}")
                    for i in range(1, 41)])
    for level in ("address", "city", "region", "country", "suppressed"):
        db.execute(f"DECLARE PURPOSE {level} SET ACCURACY LEVEL {level} "
                   f"FOR visits.location")
    if columnar:
        db.columnarize("visits")
    return db


class TestVectorizedMatchesRowPath:
    QUERIES = [
        "SELECT id, val FROM t WHERE grp = 'g1' AND val > 50",
        "SELECT id FROM t WHERE note LIKE 'note-1%'",
        "SELECT id FROM t WHERE val BETWEEN 10 AND 30 ORDER BY id",
        "SELECT id FROM t WHERE grp IN ('g1', 'g2') AND NOT val >= 90",
        "SELECT id FROM t WHERE grp = 'g1' OR val < 5",
        "SELECT grp, COUNT(*) AS n, AVG(val) AS a FROM t GROUP BY grp "
        "HAVING n > 10 ORDER BY grp",
        "SELECT id, val FROM t ORDER BY val DESC, id ASC LIMIT 7",
        "SELECT grp FROM t ORDER BY val DESC, id ASC LIMIT 7",
        "SELECT * FROM t WHERE id = 42",
        "SELECT note FROM t WHERE val <= 3",
        "SELECT id FROM t WHERE note IS NOT NULL AND val != 7",
    ]

    def test_same_results_across_the_sql_surface(self):
        columnar = make_stable_db(columnar=True)
        compiled = make_stable_db()
        interpreted = make_stable_db(False)
        for sql in self.QUERIES:
            want = compiled.execute(sql)
            base = interpreted.execute(sql)
            got = columnar.execute(sql)
            assert got.columns == want.columns == base.columns, sql
            expected = sorted(map(repr, want.rows))
            assert sorted(map(repr, base.rows)) == expected, sql
            assert sorted(map(repr, got.rows)) == expected, sql

    def test_joins_and_dml_fall_back_to_row_iteration(self):
        db = make_stable_db(rows=50, columnar=True)
        db.execute("CREATE TABLE team (tid INT PRIMARY KEY, city TEXT)")
        db.executemany("INSERT INTO team VALUES (?, ?)",
                       [(i, f"city-{i}") for i in range(1, 11)])
        result = db.execute(
            "SELECT t.id, team.city FROM t JOIN team ON t.id = team.tid")
        assert sorted(result.rows) == [(i, f"city-{i}") for i in range(1, 11)]
        assert db.execute("UPDATE t SET note = 'x' WHERE val < 10") > 0
        assert db.execute("DELETE FROM t WHERE grp = 'g0'") > 0

    def test_mutations_after_columnarize_stay_visible(self):
        db = make_stable_db(rows=20, columnar=True)
        baseline = make_stable_db(False, rows=20)
        for sql in ("INSERT INTO t VALUES (21, 'g9', 999, 'late')",
                    "UPDATE t SET val = 0 WHERE id <= 5",
                    "DELETE FROM t WHERE id = 10"):
            db.execute(sql)
            baseline.execute(sql)
        probe = "SELECT id, grp, val, note FROM t WHERE val >= 0 ORDER BY id"
        assert db.execute(probe).rows == baseline.execute(probe).rows


class TestPlanGating:
    def test_explain_shows_columnar_scan(self):
        db = make_stable_db(columnar=True)
        explain = "\n".join(r[0] for r in db.execute(
            "EXPLAIN SELECT id, val FROM t WHERE val > 50").rows)
        assert "ColumnarScan" in explain

    def test_pipeline_uses_batch_operators(self):
        db = make_stable_db(columnar=True)
        result = db.execute("SELECT id, val FROM t WHERE val > 50")
        pipeline = result.pipeline
        assert isinstance(pipeline.find("ColumnarScan"), ColumnarScan)
        assert isinstance(pipeline.find("Filter"), BatchFilter)
        assert isinstance(pipeline.find("Project"), BatchProject)

    def test_non_columnarized_table_keeps_seq_scan(self):
        db = make_stable_db()
        explain = "\n".join(r[0] for r in db.execute(
            "EXPLAIN SELECT id FROM t WHERE val > 50").rows)
        assert "ColumnarScan" not in explain and "SeqScan" in explain

    def test_interpreted_baseline_never_goes_columnar(self):
        db = make_stable_db(False, columnar=True)
        explain = "\n".join(r[0] for r in db.execute(
            "EXPLAIN SELECT id FROM t WHERE val > 50").rows)
        assert "ColumnarScan" not in explain

    def test_index_scan_beats_columnar_on_selective_probe(self):
        db = make_stable_db(rows=3000, columnar=True)
        db.execute("CREATE INDEX idx_val ON t (val) USING btree")
        explain = "\n".join(r[0] for r in db.execute(
            "EXPLAIN SELECT grp FROM t WHERE val = 7").rows)
        assert "ColumnarScan" not in explain and "IndexScan" in explain

    def test_parameterized_plans_vectorize_after_binding(self):
        db = make_stable_db(columnar=True)
        sql = "SELECT id, val FROM t WHERE val > ? AND grp = ?"
        first = db.execute(sql, params=(50, "g1"))
        second = db.execute(sql, params=(90, "g2"))
        for result in (first, second):
            assert isinstance(result.pipeline.find("Filter"), BatchFilter)
        baseline = make_stable_db(False)
        assert sorted(second.rows) == sorted(
            baseline.execute(sql, params=(90, "g2")).rows)


class TestZoneMapPruning:
    def test_range_predicate_prunes_non_matching_segments(self):
        db = make_stable_db(rows=3000, columnar=True)     # 3 segments of 1024
        result = db.execute("SELECT val FROM t WHERE id BETWEEN 100 AND 120")
        scan = result.pipeline.find("ColumnarScan")
        assert scan.segments_pruned == 2
        assert len(result.rows) == 21
        store = db.table_store("t")
        assert store.segments.stats.segments_pruned >= 2

    def test_equality_predicate_prunes(self):
        db = make_stable_db(rows=3000, columnar=True)
        result = db.execute("SELECT grp FROM t WHERE id = 2000")
        # The pk probe goes through the index; force the seq path on val.
        result = db.execute("SELECT id FROM t WHERE val = 7 AND id >= 1")
        scan = result.pipeline.find("ColumnarScan")
        assert scan is not None            # ran columnar; val spans all segments
        rows = {row[0] for row in result.rows}
        assert rows == {i for i in range(1, 3001) if (i * 7) % 101 == 7}

    def test_degradable_columns_are_never_prune_candidates(self):
        """Zone maps summarize *stored* values; predicates see generalized
        ones, so pruning on a degradable column would be unsound."""
        db = make_degradable_db(columnar=True)
        result = db.execute(
            "SELECT id FROM visits WHERE location = 'Paris'", purpose="city")
        scan = result.pipeline.find("ColumnarScan")
        assert scan is not None and scan.segments_pruned == 0
        assert len(result.rows) == 20


class TestDegradableColumnsThroughVectors:
    def test_generalize_on_read_matches_row_path(self):
        columnar = make_degradable_db(columnar=True)
        row_path = make_degradable_db()
        for purpose in ("address", "city", "region", "country"):
            sql = "SELECT id, location FROM visits ORDER BY id"
            assert columnar.execute(sql, purpose=purpose).rows == \
                row_path.execute(sql, purpose=purpose).rows, purpose

    def test_exclusion_hides_rows_stored_coarser_than_demanded(self):
        db = make_degradable_db(columnar=True)
        db.advance_time(hours=2)           # every location now at city level
        scanned = db.executor.stats.rows_excluded_not_computable
        assert db.execute("SELECT id FROM visits", purpose="address").rows == []
        assert db.executor.stats.rows_excluded_not_computable - scanned == 40
        assert len(db.execute("SELECT id FROM visits", purpose="city").rows) == 40

    def test_suppressed_sentinel_survives_vector_round_trip(self):
        db = make_degradable_db(columnar=True)
        db.advance_time(days=130)          # past '3 months': suppressed level
        rows = db.execute("SELECT location FROM visits",
                          purpose="suppressed").rows
        assert len(rows) == 40
        assert all(value is SUPPRESSED for (value,) in rows)

    def test_level_vector_tracks_degradation_waves(self):
        db = make_degradable_db(columnar=True)
        db.advance_time(hours=2)
        segments = db.table_store("visits").segments
        assert segments.stats.degrade_chunks > 0
        levels = [level for segment in segments.segments
                  for level in segment.levels["location"]
                  if level is not None]
        assert levels and all(level == 1 for level in levels)


class TestOrderByHiddenColumns:
    """Regression: ORDER BY columns absent from the output list used to fail
    binding; now they sort the rows and stay out of the result."""

    MODES = [
        {"optimized": True, "columnar": True},
        {"optimized": True, "columnar": False},
        {"optimized": False, "columnar": False},
    ]

    @pytest.mark.parametrize("mode", MODES, ids=["columnar", "compiled",
                                                 "interpreted"])
    def test_sorts_by_hidden_column_and_drops_it(self, mode):
        db = make_stable_db(**mode, rows=30)
        result = db.execute("SELECT grp FROM t ORDER BY val DESC, id ASC")
        assert result.columns == ["grp"]
        order = sorted(range(1, 31), key=lambda i: (-((i * 7) % 101), i))
        assert result.rows == [(f"g{i % 5}",) for i in order]

    @pytest.mark.parametrize("mode", MODES, ids=["columnar", "compiled",
                                                 "interpreted"])
    def test_topn_with_hidden_sort_column(self, mode):
        db = make_stable_db(**mode, rows=30)
        result = db.execute("SELECT note FROM t ORDER BY val DESC, id LIMIT 4")
        assert result.columns == ["note"]
        order = sorted(range(1, 31), key=lambda i: (-((i * 7) % 101), i))
        assert result.rows == [(f"note-{i}",) for i in order[:4]]

    def test_aggregate_may_order_by_hidden_group_column(self):
        db = make_stable_db(rows=30)
        result = db.execute(
            "SELECT COUNT(*) AS n FROM t GROUP BY grp ORDER BY grp DESC")
        assert result.columns == ["n"]
        assert len(result.rows) == 5

    def test_aggregate_order_by_non_group_column_still_errors(self):
        db = make_stable_db(rows=30)
        with pytest.raises(BindingError):
            db.execute("SELECT COUNT(*) AS n FROM t GROUP BY grp ORDER BY val")
