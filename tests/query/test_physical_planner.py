"""Physical planning: access-path selection and the residual-predicate split."""

import pytest

from repro.core.domains import build_location_tree, build_salary_ranges
from repro.core.lcp import AttributeLCP
from repro.core.policy import Purpose
from repro.core.schema import Column, TableSchema
from repro.index.btree import BPlusTreeIndex
from repro.index.gt_index import GTIndex
from repro.index.hashindex import HashIndex
from repro.query import ast_nodes as ast
from repro.query.catalog import Catalog, IndexInfo
from repro.query.operators import render_expression
from repro.query.parser import parse
from repro.query.planner import Planner


@pytest.fixture
def catalog():
    catalog = Catalog()
    location = catalog.registry.register_domain(build_location_tree())
    catalog.registry.register_domain(build_salary_ranges())
    catalog.registry.register_policy(
        AttributeLCP(location, transitions=["1 h", "1 d", "1 month", "3 months"],
                     name="location_lcp"))
    schema = TableSchema("person", [
        Column("id", "INT", primary_key=True),
        Column("name", "TEXT"),
        Column("location", "TEXT", degradable=True, domain="location",
               policy="location_lcp"),
        Column("salary", "INT"),
    ])
    catalog.add_table(schema)
    catalog.add_index(IndexInfo(name="idx_id", table="person", column="id",
                                method="hash", index=HashIndex("idx_id")))
    catalog.add_index(IndexInfo(name="idx_salary", table="person", column="salary",
                                method="btree", index=BPlusTreeIndex("idx_salary")))
    catalog.add_index(IndexInfo(name="idx_loc", table="person", column="location",
                                method="gt",
                                index=GTIndex("idx_loc", location)))
    return catalog


@pytest.fixture
def planner(catalog):
    return Planner(catalog)


def plan(planner, sql, purpose=None):
    return planner.plan_physical(parse(sql), purpose)


class TestAccessPathSelection:
    def test_no_where_uses_seq_scan(self, planner):
        physical = plan(planner, "SELECT * FROM person")
        assert physical.base.access.kind == "seq"
        assert physical.residual is None

    def test_unindexed_predicate_uses_seq_scan(self, planner):
        physical = plan(planner, "SELECT * FROM person WHERE name = 'alice'")
        assert physical.base.access.kind == "seq"
        assert physical.residual is not None

    def test_equality_on_hash_indexed_column(self, planner):
        physical = plan(planner, "SELECT * FROM person WHERE id = 7")
        assert physical.base.access.kind == "index_eq"
        assert physical.base.access.column == "id"
        assert physical.base.access.key == 7

    def test_range_on_btree_indexed_column(self, planner):
        physical = plan(planner,
                        "SELECT * FROM person WHERE salary >= 1000 AND salary < 3000")
        access = physical.base.access
        assert access.kind == "index_range"
        assert (access.low, access.high) == (1000, 3000)
        assert access.include_low and not access.include_high

    def test_gt_level_on_degradable_column_with_purpose(self, planner):
        purpose = Purpose("stat").require("person", "location", "city")
        physical = plan(planner, "SELECT * FROM person WHERE location = 'Paris'",
                        purpose)
        access = physical.base.access
        assert access.kind == "gt_level"
        assert access.level == 1          # city
        assert access.key == "Paris"

    def test_unconstrained_accuracy_falls_back_to_seq(self, planner):
        """A purpose that does not mention the column leaves its accuracy
        unconstrained (stored level varies per row), so the GT index cannot
        be probed at one level and the planner keeps a sequential scan."""
        purpose = Purpose("other")        # no requirement on person.location
        physical = plan(planner, "SELECT * FROM person WHERE location = 'Paris'",
                        purpose)
        assert physical.base.access.kind == "seq"
        assert physical.residual is not None    # predicate still evaluated

    def test_degradable_range_never_uses_btree(self, planner):
        physical = plan(planner,
                        "SELECT * FROM person WHERE location >= 'A' AND location <= 'Z'")
        assert physical.base.access.kind == "seq"


class TestResidualSplit:
    def test_fully_covered_where_has_no_residual(self, planner):
        physical = plan(planner, "SELECT * FROM person WHERE id = 7")
        assert physical.residual is None

    def test_uncovered_conjuncts_stay_residual(self, planner):
        physical = plan(planner,
                        "SELECT * FROM person WHERE id = 7 AND name = 'alice'")
        assert physical.base.access.kind == "index_eq"
        assert render_expression(physical.residual) == "name = 'alice'"

    def test_range_bounds_are_covered(self, planner):
        physical = plan(planner,
                        "SELECT * FROM person WHERE salary >= 1000 AND salary < 3000")
        assert physical.residual is None

    def test_between_is_covered(self, planner):
        physical = plan(planner,
                        "SELECT * FROM person WHERE salary BETWEEN 1000 AND 3000")
        assert physical.base.access.kind == "index_range"
        assert physical.residual is None

    def test_overwritten_range_bound_stays_residual(self, planner):
        """Two lower bounds on one column: the index keeps only the last one,
        so the other must still be checked per row."""
        physical = plan(planner,
                        "SELECT * FROM person WHERE salary > 2000 AND salary > 500")
        access = physical.base.access
        assert access.kind == "index_range"
        assert access.low == 500
        assert render_expression(physical.residual) == "salary > 2000"

    def test_gt_covered_conjunct_dropped(self, planner):
        purpose = Purpose("stat").require("person", "location", "city")
        physical = plan(planner,
                        "SELECT * FROM person WHERE location = 'Paris' AND salary > 100",
                        purpose)
        assert physical.base.access.kind == "gt_level"
        assert render_expression(physical.residual) == "salary > 100"

    def test_null_equality_key_is_not_covered(self, planner):
        physical = plan(planner, "SELECT * FROM person WHERE id = NULL")
        assert physical.residual is not None

    def test_joins_keep_the_full_where_clause(self, planner, catalog):
        other = TableSchema("team", [
            Column("id", "INT", primary_key=True),
            Column("city", "TEXT"),
        ])
        catalog.add_table(other)
        physical = plan(planner,
                        "SELECT person.name FROM person "
                        "JOIN team ON person.id = team.id WHERE id = 7")
        assert physical.base.access.kind == "index_eq"
        # Unqualified `id` may bind to team.id on the merged row, so the
        # predicate is re-evaluated after the join.
        assert physical.residual is not None

    def test_or_predicate_is_never_split(self, planner):
        physical = plan(planner,
                        "SELECT * FROM person WHERE id = 7 OR name = 'alice'")
        assert physical.base.access.kind == "seq"
        assert isinstance(physical.residual, ast.BooleanOp)


class TestPlanCachingShape:
    def test_physical_plan_is_what_prepared_statements_cache(self, planner):
        from repro.query.planner import PhysicalPlan
        physical = plan(planner, "SELECT * FROM person WHERE id = 7")
        assert isinstance(physical, PhysicalPlan)
        # Planning twice yields equivalent plans (no shared mutable state
        # beyond the immutable AST/stats-free descriptors).
        again = plan(planner, "SELECT * FROM person WHERE id = 7")
        assert again.base.access.kind == physical.base.access.kind
