"""PEP 249 Connection/Cursor surface: protocol, transactions, purposes."""

from __future__ import annotations

import pytest

import repro
from repro import InstantDB, connect
from repro.api import Connection, Cursor

from ..conftest import build_engine


@pytest.fixture
def conn():
    connection = connect()
    yield connection
    connection.close()


def make_table(connection):
    cur = connection.cursor()
    cur.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)")
    return cur


class TestModuleGlobals:
    def test_pep249_globals(self):
        assert repro.apilevel == "2.0"
        assert repro.paramstyle == "qmark"
        assert isinstance(repro.threadsafety, int)

    def test_exception_hierarchy(self):
        assert issubclass(repro.DatabaseError, repro.Error)
        assert issubclass(repro.InterfaceError, repro.Error)
        for name in ("DataError", "OperationalError", "IntegrityError",
                     "InternalError", "ProgrammingError", "NotSupportedError"):
            assert issubclass(getattr(repro, name), repro.DatabaseError)

    def test_subsystem_errors_are_pep249_errors(self):
        from repro.core.errors import (CatalogError, InstantDBError,
                                       ParseError, TransactionAborted)
        assert issubclass(InstantDBError, repro.Error)
        assert issubclass(ParseError, repro.ProgrammingError)
        assert issubclass(CatalogError, repro.ProgrammingError)
        assert issubclass(TransactionAborted, repro.OperationalError)

    def test_legacy_catch_still_works(self, conn):
        from repro.core.errors import CatalogError
        with pytest.raises(CatalogError):
            conn.cursor().execute("SELECT * FROM nosuch")
        with pytest.raises(repro.ProgrammingError):
            conn.cursor().execute("SELECT * FROM nosuch")


class TestCursorBasics:
    def test_execute_returns_cursor_and_fetches(self, conn):
        cur = make_table(conn)
        cur.execute("INSERT INTO t VALUES (?, ?)", (1, "a"))
        cur.execute("INSERT INTO t VALUES (?, ?)", (2, "b"))
        rows = cur.execute("SELECT id, name FROM t ORDER BY id").fetchall()
        assert rows == [(1, "a"), (2, "b")]

    def test_description_and_rowcount(self, conn):
        cur = make_table(conn)
        assert cur.description is None          # DDL: no result set
        cur.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert cur.rowcount == 2
        assert cur.description is None
        cur.execute("SELECT id, name FROM t")
        assert [entry[0] for entry in cur.description] == ["id", "name"]
        assert all(len(entry) == 7 for entry in cur.description)
        assert cur.rowcount == -1               # PEP 249: unknown for SELECT

    def test_fetchone_fetchmany_exhaustion(self, conn):
        cur = make_table(conn)
        cur.executemany("INSERT INTO t VALUES (?, ?)",
                        [(i, f"n{i}") for i in range(5)])
        cur.execute("SELECT id FROM t ORDER BY id")
        assert cur.fetchone() == (0,)
        assert cur.fetchmany(2) == [(1,), (2,)]
        cur.arraysize = 10
        assert cur.fetchmany() == [(3,), (4,)]
        assert cur.fetchone() is None
        assert cur.fetchall() == []

    def test_iteration(self, conn):
        cur = make_table(conn)
        cur.executemany("INSERT INTO t VALUES (?, ?)", [(1, "a"), (2, "b")])
        assert [row for row in cur.execute("SELECT id FROM t ORDER BY id")] == \
            [(1,), (2,)]

    def test_fetch_without_result_set_raises(self, conn):
        cur = conn.cursor()
        with pytest.raises(repro.ProgrammingError):
            cur.fetchall()
        make_table(conn)
        cur.execute("INSERT INTO t VALUES (1, 'a')")
        with pytest.raises(repro.ProgrammingError):
            cur.fetchone()

    def test_executemany_rejects_select(self, conn):
        make_table(conn)
        with pytest.raises(repro.NotSupportedError):
            conn.cursor().executemany("SELECT * FROM t", [()])

    def test_closed_cursor_and_connection_raise(self):
        connection = connect()
        cur = connection.cursor()
        cur.close()
        with pytest.raises(repro.InterfaceError):
            cur.execute("SELECT 1")
        connection.close()
        with pytest.raises(repro.InterfaceError):
            connection.cursor()
        connection.close()                      # idempotent


class TestTransactions:
    def test_rollback_discards_inserts(self, conn):
        cur = make_table(conn)
        conn.commit()
        cur.executemany("INSERT INTO t VALUES (?, ?)", [(1, "a"), (2, "b")])
        assert conn.in_transaction
        conn.rollback()
        assert not conn.in_transaction
        assert cur.execute("SELECT * FROM t").fetchall() == []

    def test_commit_persists(self, conn):
        cur = make_table(conn)
        cur.execute("INSERT INTO t VALUES (1, 'a')")
        conn.commit()
        conn.rollback()                         # no-op: nothing pending
        assert len(cur.execute("SELECT * FROM t").fetchall()) == 1

    def test_context_manager_commits_on_success(self):
        db = InstantDB()
        with connect(engine=db) as connection:
            connection.execute("CREATE TABLE t (id INT PRIMARY KEY)")
            connection.execute("INSERT INTO t VALUES (?)", (1,))
        # the wrapped engine survives the connection and saw the commit
        assert db.execute("SELECT COUNT(*) AS n FROM t").rows == [(1,)]

    def test_context_manager_rolls_back_on_error(self):
        db = InstantDB()
        db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        with pytest.raises(RuntimeError):
            with connect(engine=db) as connection:
                connection.execute("INSERT INTO t VALUES (?)", (1,))
                raise RuntimeError("boom")
        assert db.execute("SELECT COUNT(*) AS n FROM t").rows == [(0,)]

    def test_batch_runs_in_single_engine_transaction(self, conn):
        cur = make_table(conn)
        conn.commit()
        engine = conn.engine
        begun_before = engine.transactions.stats.begun
        cur.executemany("INSERT INTO t VALUES (?, ?)",
                        [(i, "x") for i in range(50)])
        conn.commit()
        assert engine.transactions.stats.begun == begun_before + 1


class TestPurposeScoping:
    def test_connection_purpose_controls_accuracy(self):
        db = build_engine()
        db.execute("DECLARE PURPOSE stats SET ACCURACY LEVEL city "
                   "FOR person.location")
        conn = connect(engine=db, purpose="stats")
        cur = conn.cursor()
        cur.execute("INSERT INTO person (id, location) VALUES (?, ?)",
                    (1, "1 Main Street, Paris"))
        conn.commit()
        conn.engine.advance_time(hours=2)       # address degrades to city
        assert cur.execute("SELECT location FROM person").fetchall() == \
            [("Paris",)]
        # per-statement override back to the conservative default: the tuple
        # is no longer computable at level 0, so it vanishes from the result
        assert cur.execute("SELECT location FROM person",
                           purpose=db.purpose("stats")).fetchall() == [("Paris",)]
        conn.set_purpose(None)
        assert cur.execute("SELECT location FROM person").fetchall() == []
        conn.close()
        assert db.tables()                      # wrapped engine left open

    def test_engine_kwargs_conflict_rejected(self):
        db = InstantDB()
        with pytest.raises(repro.InterfaceError):
            connect(engine=db, strategy="rewrite")


def test_connection_and_cursor_types(conn):
    assert isinstance(conn, Connection)
    assert isinstance(conn.cursor(), Cursor)
