"""Prepared-statement cache: parse-once semantics, plan reuse, invalidation."""

from __future__ import annotations

import pytest

from repro import InstantDB, connect
from repro.query.prepared import StatementCache

SQL_INSERT = "INSERT INTO t VALUES (?, ?)"


@pytest.fixture
def db():
    engine = InstantDB()
    engine.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)")
    return engine


class TestStatementCache:
    def test_same_sql_hits_cache(self, db):
        first = db.prepare(SQL_INSERT)
        second = db.prepare(SQL_INSERT)
        assert first is second
        assert db.statements.stats.hits >= 1

    def test_param_count_precomputed(self, db):
        assert db.prepare(SQL_INSERT).param_count == 2
        assert db.prepare("SELECT * FROM t").param_count == 0

    def test_lru_eviction(self):
        cache = StatementCache(capacity=2)
        a = cache.get_or_parse("SELECT * FROM a")
        cache.get_or_parse("SELECT * FROM b")
        cache.get_or_parse("SELECT * FROM c")      # evicts a
        assert cache.stats.evictions == 1
        assert "SELECT * FROM a" not in cache
        assert cache.get_or_parse("SELECT * FROM a") is not a

    def test_executemany_parses_once(self, db):
        misses_before = db.statements.stats.misses
        db.executemany(SQL_INSERT, [(i, "x") for i in range(100)])
        assert db.statements.stats.misses == misses_before + 1
        assert db.row_count("t") == 100


class TestExecutemanySemantics:
    def test_single_transaction_and_rowcount(self, db):
        begun = db.transactions.stats.begun
        total = db.executemany(SQL_INSERT, [(i, "x") for i in range(10)])
        assert total == 10
        assert db.transactions.stats.begun == begun + 1
        assert db.transactions.stats.committed >= 1

    def test_failure_rolls_back_whole_batch(self, db):
        with pytest.raises(Exception):
            # the third row has a bad parameter count
            db.executemany(SQL_INSERT, [(1, "a"), (2, "b"), (3,)])
        assert db.row_count("t") == 0

    def test_multi_row_values_batch(self, db):
        total = db.executemany("INSERT INTO t VALUES (?, ?), (?, ?)",
                               [(1, "a", 2, "b"), (3, "c", 4, "d")])
        assert total == 4
        assert db.row_count("t") == 4


class TestPlanReuse:
    def test_repeated_select_reuses_plan(self, db):
        db.executemany(SQL_INSERT, [(i, "x") for i in range(5)])
        db.execute("SELECT * FROM t")
        hits_before = db.statements.stats.plan_hits
        db.execute("SELECT * FROM t")
        db.execute("SELECT * FROM t")
        assert db.statements.stats.plan_hits == hits_before + 2

    def test_catalog_change_invalidates_plan(self, db):
        db.executemany(SQL_INSERT, [(i, "x") for i in range(5)])
        sql = "SELECT * FROM t WHERE id = 3"
        assert "SeqScan" in db.execute(f"EXPLAIN {sql}").rows[0][0]
        db.execute(sql)
        db.execute(sql)                              # plan now cached
        db.execute("CREATE INDEX idx_id ON t (id) USING btree")
        result = db.execute(sql)                     # must not reuse stale plan
        assert result.rows == [(3, "x")]
        assert "IndexScan" in db.execute(f"EXPLAIN {sql}").rows[0][0]

    def test_adhoc_purpose_sharing_a_name_is_not_served_a_cached_plan(self, db):
        """An ad-hoc Purpose must never reuse a plan cached under its name.

        Plans embed the accuracy levels the purpose demanded; serving a plan
        cached for a same-named catalog purpose would silently answer at the
        wrong accuracy — a privacy violation, not just a perf bug.
        """
        from repro import Purpose
        from repro.core.policy import AccuracyRequirement

        db.execute("DROP TABLE t")
        from ..conftest import build_engine
        engine = build_engine()
        engine.execute("INSERT INTO person (id, location) VALUES (?, ?)",
                       params=(1, "1 Main Street, Paris"))
        engine.execute("DECLARE PURPOSE p SET ACCURACY LEVEL city "
                       "FOR person.location")
        engine.advance_time(hours=2)          # degrade address -> city
        sql = "SELECT location FROM person"
        assert engine.execute(sql, purpose="p").rows == [("Paris",)]
        assert engine.execute(sql, purpose="p").rows == [("Paris",)]  # cached
        strict = Purpose("p")                 # same name, address-level demand
        strict.add_requirement(AccuracyRequirement(
            table="person", column="location", level="address"))
        # city-level data cannot answer an address-level demand: no rows,
        # and crucially not the cached city-level plan's rows
        assert engine.execute(sql, purpose=strict).rows == []

    def test_parameterized_selects_are_not_plan_cached(self, db):
        db.executemany(SQL_INSERT, [(i, "x") for i in range(5)])
        prepared = db.prepare("SELECT * FROM t WHERE id = ?")
        db.execute("SELECT * FROM t WHERE id = ?", params=(1,))
        db.execute("SELECT * FROM t WHERE id = ?", params=(2,))
        # bound literals differ per execution: caching would be wrong
        assert prepared.cached_plan(None, db.catalog.version) is None


class TestCursorIntegration:
    def test_cursor_executemany_uses_engine_cache(self):
        conn = connect()
        cur = conn.cursor()
        cur.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)")
        conn.commit()
        misses_before = conn.engine.statements.stats.misses
        cur.executemany(SQL_INSERT, [(i, "x") for i in range(200)])
        conn.commit()
        assert conn.engine.statements.stats.misses == misses_before + 1
        assert cur.rowcount == 200
        assert conn.engine.row_count("t") == 200
        conn.close()
