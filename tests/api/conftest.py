"""Transport parametrization for the PEP 249 suite.

By default the tests exercise the in-process driver (``repro.connect``).
With ``REPRO_TRANSPORT=remote`` in the environment, every ``connect()`` in
these tests instead spins up an in-process wire server
(:class:`repro.server.ServerThread`) around the engine and returns the
remote driver's connection — the whole DB-API suite then runs over the
socket protocol, proving the two drivers expose the same surface.
"""

from __future__ import annotations

import functools
import os

import pytest

REMOTE = os.environ.get("REPRO_TRANSPORT") == "remote"


class _EngineProxy:
    """Route test-side engine calls through the server's executor thread.

    While an engine is being served it is pinned to the server's
    engine-executor thread (enforced under ``REPRO_DEBUG_INVARIANTS=1``).
    Tests that poke ``conn.engine`` directly would otherwise call in from
    the pytest thread; this proxy submits bound methods through
    ``ServerThread.submit`` and passes plain attribute reads through.
    """

    def __init__(self, server, engine):
        object.__setattr__(self, "_server", server)
        object.__setattr__(self, "_engine", engine)

    def __getattr__(self, name):
        value = getattr(self._engine, name)
        if not callable(value):
            return value

        def call(*args, **kwargs):
            return self._server.submit(functools.partial(value, *args, **kwargs))

        return call


def _make_remote_connect(servers):
    from repro import InstantDB
    from repro.client import connect as client_connect
    from repro.core.errors import InterfaceError
    from repro.server import ServerThread

    def remote_connect(data_dir=None, *, engine=None, purpose=None,
                       **engine_kwargs):
        # mirror the local connect() signature and its engine=/kwargs guard
        if engine is not None and (data_dir is not None or engine_kwargs):
            raise InterfaceError("pass either engine= or engine constructor "
                                 "arguments, not both")
        owns_engine = engine is None
        if engine is None:
            engine = InstantDB(data_dir=data_dir, **engine_kwargs)
        server = ServerThread(engine).start()
        servers.append(server)
        host, port = server.address
        connection = client_connect(host, port, purpose=purpose)
        connection.engine = _EngineProxy(server, engine)
        connection.server = server

        original_close = connection.close

        def close():
            original_close()
            server.stop()
            if owns_engine:
                engine.close()

        connection.close = close
        return connection

    return remote_connect


@pytest.fixture(autouse=True)
def _transport(request, monkeypatch):
    if not REMOTE:
        yield
        return
    import repro
    from repro.client import RemoteConnection, RemoteCursor

    servers = []
    remote_connect = _make_remote_connect(servers)
    monkeypatch.setattr(repro, "connect", remote_connect)
    module = request.module
    if hasattr(module, "connect"):
        monkeypatch.setattr(module, "connect", remote_connect)
    if hasattr(module, "Connection"):
        monkeypatch.setattr(module, "Connection", RemoteConnection)
    if hasattr(module, "Cursor"):
        monkeypatch.setattr(module, "Cursor", RemoteCursor)
    yield
    for server in servers:
        try:
            server.stop(drain=False)
        except Exception:
            pass
