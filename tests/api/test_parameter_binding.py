"""Security-minded parameter binding tests.

Binding is structural (AST substitution), never textual: a parameter value
can never change the *shape* of a statement.  These tests feed classic SQL
injection payloads through every placeholder position and prove they round
trip as plain data.
"""

from __future__ import annotations

import pytest

import repro
from repro import connect
from repro.query import ast_nodes as ast
from repro.query.parameters import bind_parameters, count_placeholders
from repro.query.parser import parse

INJECTION_PAYLOADS = [
    "'; DROP TABLE person; --",
    "Robert'); DROP TABLE students;--",
    "' OR '1'='1",
    "\" OR 1=1 --",
    "1; DELETE FROM t",
    "O'Brien",                      # the honest quote case
    "line\nbreak -- comment",
    "名前; DROP TABLE t; --",
]


@pytest.fixture
def conn():
    connection = connect()
    cur = connection.cursor()
    cur.execute("CREATE TABLE person (id INT PRIMARY KEY, name TEXT)")
    connection.commit()
    yield connection
    connection.close()


class TestInjectionRoundTrip:
    @pytest.mark.parametrize("payload", INJECTION_PAYLOADS)
    def test_insert_payload_is_data(self, conn, payload):
        cur = conn.cursor()
        cur.execute("INSERT INTO person VALUES (?, ?)", (1, payload))
        conn.commit()
        # the table survived and the payload is stored verbatim
        assert cur.execute("SELECT name FROM person").fetchall() == [(payload,)]
        assert cur.execute("SELECT name FROM person WHERE name = ?",
                           (payload,)).fetchall() == [(payload,)]

    def test_or_1_equals_1_does_not_widen_where(self, conn):
        cur = conn.cursor()
        cur.executemany("INSERT INTO person VALUES (?, ?)",
                        [(1, "alice"), (2, "bob")])
        conn.commit()
        # a textual driver would return every row here
        assert cur.execute("SELECT * FROM person WHERE name = ?",
                           ("' OR '1'='1",)).fetchall() == []

    def test_payload_in_update_and_delete(self, conn):
        cur = conn.cursor()
        cur.execute("INSERT INTO person VALUES (?, ?)", (1, "alice"))
        cur.execute("UPDATE person SET name = ? WHERE id = ?",
                    ("x'; DROP TABLE person; --", 1))
        conn.commit()
        assert cur.execute("SELECT name FROM person WHERE id = ?",
                           (1,)).fetchone() == ("x'; DROP TABLE person; --",)
        cur.execute("DELETE FROM person WHERE name = ?",
                    ("x'; DROP TABLE person; --",))
        conn.commit()
        assert cur.execute("SELECT * FROM person").fetchall() == []

    def test_payload_in_in_list_and_between(self, conn):
        cur = conn.cursor()
        cur.executemany("INSERT INTO person VALUES (?, ?)",
                        [(1, "a"), (2, "b"), (3, "c")])
        conn.commit()
        rows = cur.execute("SELECT id FROM person WHERE name IN (?, ?) "
                           "ORDER BY id", ("a", "'; --")).fetchall()
        assert rows == [(1,)]
        rows = cur.execute("SELECT id FROM person WHERE id BETWEEN ? AND ?",
                           (2, 3)).fetchall()
        assert rows == [(2,), (3,)]


class TestBindingContract:
    def test_wrong_parameter_count(self, conn):
        cur = conn.cursor()
        with pytest.raises(repro.InterfaceError):
            cur.execute("INSERT INTO person VALUES (?, ?)", (1,))
        with pytest.raises(repro.InterfaceError):
            cur.execute("SELECT * FROM person", (1,))

    def test_unbound_placeholder_via_legacy_facade(self, conn):
        with pytest.raises(repro.InterfaceError):
            conn.engine.execute("SELECT * FROM person WHERE id = ?")
        # and nothing was written by an unbound INSERT either
        with pytest.raises(repro.InterfaceError):
            conn.engine.execute("INSERT INTO person VALUES (?, ?)")
        assert conn.engine.row_count("person") == 0

    def test_execute_script_rejects_unbound_placeholders(self, conn):
        # script/direct statement paths must not store Placeholder objects
        with pytest.raises(repro.InterfaceError):
            conn.engine.execute_script("INSERT INTO person VALUES (1, ?)")
        with pytest.raises(repro.InterfaceError):
            conn.engine.execute_statement(
                parse("INSERT INTO person VALUES (1, ?)"))
        assert conn.engine.row_count("person") == 0

    def test_parameter_errors_catchable_both_ways(self, conn):
        # PEP 249 files wrong-arity under ProgrammingError; drivers raise
        # InterfaceError for unbindable types — we satisfy both catch styles
        for catch in (repro.InterfaceError, repro.ProgrammingError,
                      repro.DatabaseError):
            with pytest.raises(catch):
                conn.cursor().execute("INSERT INTO person VALUES (?, ?)", (1,))

    def test_unsupported_parameter_types(self, conn):
        cur = conn.cursor()
        for bad in ([1, 2], {"a": 1}, object(), b"bytes"):
            with pytest.raises(repro.InterfaceError):
                cur.execute("INSERT INTO person VALUES (?, ?)", (1, bad))

    def test_bare_string_params_rejected(self, conn):
        # a classic driver bug: "ab" silently meaning ("a", "b")
        with pytest.raises(repro.InterfaceError):
            conn.cursor().execute("INSERT INTO person VALUES (?, ?)", "ab")

    def test_legacy_facade_accepts_params(self, conn):
        db = conn.engine
        db.execute("INSERT INTO person VALUES (?, ?)", params=(1, "alice"))
        result = db.execute("SELECT name FROM person WHERE id = ?", params=(1,))
        assert result.rows == [("alice",)]


class TestParserPlaceholders:
    def test_qmark_positions_are_sequential(self):
        statement = parse("SELECT * FROM t WHERE a = ? AND b IN (?, ?) "
                          "AND c BETWEEN ? AND ?")
        assert count_placeholders(statement) == 5

    def test_insert_multi_row_placeholders(self):
        statement = parse("INSERT INTO t VALUES (?, ?), (?, ?)")
        assert count_placeholders(statement) == 4
        bound = bind_parameters(statement, (1, "a", 2, "b"))
        assert bound.rows == ((1, "a"), (2, "b"))

    def test_binding_is_pure(self):
        statement = parse("SELECT * FROM t WHERE a = ?")
        bound = bind_parameters(statement, ("x",))
        assert count_placeholders(statement) == 1     # original untouched
        assert count_placeholders(bound) == 0
        assert isinstance(bound.where.right, ast.Literal)
        assert bound.where.right.value == "x"

    def test_question_mark_inside_string_literal_is_not_a_placeholder(self):
        statement = parse("SELECT * FROM t WHERE a = 'what?'")
        assert count_placeholders(statement) == 0
