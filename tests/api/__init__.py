"""Tests of the PEP 249 driver surface (`repro.connect`)."""
