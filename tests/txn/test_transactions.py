"""Tests for the transaction manager."""

import pytest

from repro.core.errors import TransactionError
from repro.storage.wal import LogRecordType, WriteAheadLog
from repro.txn.transaction import TransactionManager, TransactionState


@pytest.fixture
def manager():
    return TransactionManager(WriteAheadLog())


class TestLifecycle:
    def test_begin_assigns_increasing_ids(self, manager):
        first = manager.begin()
        second = manager.begin()
        assert second.txn_id > first.txn_id
        assert manager.is_active(first.txn_id)

    def test_commit(self, manager):
        txn = manager.begin()
        manager.commit(txn)
        assert txn.state is TransactionState.COMMITTED
        assert not manager.is_active(txn.txn_id)
        types = [record.record_type for record in manager.wal]
        assert types == [LogRecordType.BEGIN, LogRecordType.COMMIT]

    def test_abort_runs_undo_actions_in_reverse(self, manager):
        txn = manager.begin()
        order = []
        txn.on_abort(lambda: order.append("first"))
        txn.on_abort(lambda: order.append("second"))
        manager.abort(txn)
        assert order == ["second", "first"]
        assert txn.state is TransactionState.ABORTED

    def test_commit_skips_undo_actions(self, manager):
        txn = manager.begin()
        called = []
        txn.on_abort(lambda: called.append(True))
        manager.commit(txn)
        assert called == []

    def test_double_commit_rejected(self, manager):
        txn = manager.begin()
        manager.commit(txn)
        with pytest.raises(TransactionError):
            manager.commit(txn)

    def test_abort_after_commit_rejected(self, manager):
        txn = manager.begin()
        manager.commit(txn)
        with pytest.raises(TransactionError):
            manager.abort(txn)

    def test_double_abort_is_noop(self, manager):
        txn = manager.begin()
        manager.abort(txn)
        manager.abort(txn)
        assert manager.stats.aborted == 1

    def test_system_transactions_counted(self, manager):
        manager.begin(system=True)
        assert manager.stats.system_begun == 1

    def test_on_abort_requires_active(self, manager):
        txn = manager.begin()
        manager.commit(txn)
        with pytest.raises(TransactionError):
            txn.on_abort(lambda: None)


class TestLockingHelpers:
    def test_locks_released_on_commit(self, manager):
        txn = manager.begin()
        assert manager.lock_exclusive(txn, "person")
        manager.commit(txn)
        other = manager.begin()
        assert manager.lock_exclusive(other, "person")

    def test_locks_released_on_abort(self, manager):
        txn = manager.begin()
        assert manager.lock_shared(txn, "person")
        manager.abort(txn)
        other = manager.begin()
        assert manager.lock_exclusive(other, "person")

    def test_conflicting_lock_returns_false(self, manager):
        writer = manager.begin()
        reader = manager.begin()
        assert manager.lock_exclusive(writer, "person")
        assert not manager.lock_shared(reader, "person")

    def test_conflict_counter(self, manager):
        manager.note_reader_degrader_conflict()
        manager.note_reader_degrader_conflict()
        assert manager.stats.reader_degrader_conflicts == 2


class TestRunAtomically:
    def test_commits_on_success(self, manager):
        result = manager.run_atomically(lambda txn: txn.txn_id * 10)
        assert result > 0
        assert manager.stats.committed == 1

    def test_aborts_and_reraises_on_failure(self, manager):
        undone = []

        def work(txn):
            txn.on_abort(lambda: undone.append(True))
            raise ValueError("boom")

        with pytest.raises(ValueError):
            manager.run_atomically(work)
        assert undone == [True]
        assert manager.stats.aborted == 1
