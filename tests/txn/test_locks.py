"""Tests for the 2PL lock manager and deadlock detection."""

import pytest

from repro.core.errors import DeadlockError
from repro.txn.locks import LockManager, LockMode


class TestCompatibility:
    def test_shared_locks_compatible(self):
        locks = LockManager()
        assert locks.acquire(1, "person", LockMode.SHARED)
        assert locks.acquire(2, "person", LockMode.SHARED)
        assert locks.holders_of("person") == {1: LockMode.SHARED, 2: LockMode.SHARED}

    def test_exclusive_blocks_shared(self):
        locks = LockManager()
        assert locks.acquire(1, "person", LockMode.EXCLUSIVE)
        assert not locks.acquire(2, "person", LockMode.SHARED)
        assert locks.is_waiting(2)

    def test_shared_blocks_exclusive(self):
        locks = LockManager()
        assert locks.acquire(1, "person", LockMode.SHARED)
        assert not locks.acquire(2, "person", LockMode.EXCLUSIVE)

    def test_reentrant_acquisition(self):
        locks = LockManager()
        assert locks.acquire(1, "person", LockMode.SHARED)
        assert locks.acquire(1, "person", LockMode.SHARED)
        assert locks.acquire(1, "person", LockMode.EXCLUSIVE)   # upgrade, sole holder
        assert locks.holders_of("person")[1] is LockMode.EXCLUSIVE

    def test_upgrade_blocked_by_other_reader(self):
        locks = LockManager()
        assert locks.acquire(1, "person", LockMode.SHARED)
        assert locks.acquire(2, "person", LockMode.SHARED)
        assert not locks.acquire(1, "person", LockMode.EXCLUSIVE)

    def test_exclusive_holder_can_reacquire_shared(self):
        locks = LockManager()
        assert locks.acquire(1, "person", LockMode.EXCLUSIVE)
        assert locks.acquire(1, "person", LockMode.SHARED)


class TestRelease:
    def test_release_all_unblocks_resource(self):
        locks = LockManager()
        locks.acquire(1, "person", LockMode.EXCLUSIVE)
        assert not locks.acquire(2, "person", LockMode.SHARED)
        released = locks.release_all(1)
        assert released == 1
        assert locks.acquire(2, "person", LockMode.SHARED)

    def test_release_clears_waits_for_edges(self):
        locks = LockManager()
        locks.acquire(1, "a", LockMode.EXCLUSIVE)
        locks.acquire(2, "b", LockMode.EXCLUSIVE)
        assert not locks.acquire(2, "a", LockMode.EXCLUSIVE)
        locks.release_all(1)
        # 2 no longer waits on anyone.
        assert locks.acquire(2, "a", LockMode.EXCLUSIVE)

    def test_release_unknown_txn_is_noop(self):
        assert LockManager().release_all(42) == 0

    def test_locks_held(self):
        locks = LockManager()
        locks.acquire(1, "a", LockMode.SHARED)
        locks.acquire(1, "b", LockMode.EXCLUSIVE)
        assert locks.locks_held(1) == {"a", "b"}
        assert locks.active_lock_count() == 2


class TestDeadlocks:
    def test_two_transaction_cycle_detected(self):
        locks = LockManager()
        locks.acquire(1, "a", LockMode.EXCLUSIVE)
        locks.acquire(2, "b", LockMode.EXCLUSIVE)
        assert not locks.acquire(1, "b", LockMode.EXCLUSIVE)     # 1 waits for 2
        with pytest.raises(DeadlockError):
            locks.acquire(2, "a", LockMode.EXCLUSIVE)            # 2 waits for 1 -> cycle
        assert locks.stats.deadlocks == 1

    def test_three_transaction_cycle_detected(self):
        locks = LockManager()
        locks.acquire(1, "a", LockMode.EXCLUSIVE)
        locks.acquire(2, "b", LockMode.EXCLUSIVE)
        locks.acquire(3, "c", LockMode.EXCLUSIVE)
        assert not locks.acquire(1, "b", LockMode.EXCLUSIVE)
        assert not locks.acquire(2, "c", LockMode.EXCLUSIVE)
        with pytest.raises(DeadlockError):
            locks.acquire(3, "a", LockMode.EXCLUSIVE)

    def test_waiting_without_cycle_is_not_deadlock(self):
        locks = LockManager()
        locks.acquire(1, "a", LockMode.EXCLUSIVE)
        assert not locks.acquire(2, "a", LockMode.EXCLUSIVE)
        assert not locks.acquire(3, "a", LockMode.EXCLUSIVE)
        assert locks.stats.deadlocks == 0

    def test_victim_can_retry_after_release(self):
        locks = LockManager()
        locks.acquire(1, "a", LockMode.EXCLUSIVE)
        locks.acquire(2, "b", LockMode.EXCLUSIVE)
        locks.acquire(1, "b", LockMode.EXCLUSIVE)
        with pytest.raises(DeadlockError):
            locks.acquire(2, "a", LockMode.EXCLUSIVE)
        # Victim releases everything; the survivor proceeds.
        locks.release_all(2)
        assert locks.acquire(1, "b", LockMode.EXCLUSIVE)
