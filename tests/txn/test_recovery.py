"""Tests for crash recovery: winners redone, losers undone, degradation never undone."""

import pytest

from repro.core.domains import build_location_tree
from repro.core.schema import Column, TableSchema
from repro.storage.buffer import BufferPool
from repro.storage.degradable_store import TableStore
from repro.storage.pager import MemoryPager
from repro.storage.wal import LogRecordType, WriteAheadLog
from repro.txn.recovery import RecoveryManager
from repro.txn.transaction import TransactionManager

LOCATION = build_location_tree()


def make_schema():
    return TableSchema("person", [
        Column("id", "INT", primary_key=True),
        Column("name", "TEXT"),
        Column("location", "TEXT", degradable=True, domain="location"),
    ])


def make_environment():
    wal = WriteAheadLog()
    pool = BufferPool(MemoryPager(), capacity=16)
    store = TableStore(make_schema(), pool, wal, strategy="rewrite")
    manager = TransactionManager(wal)
    return wal, store, manager


ROW = {"id": 1, "name": "alice", "location": "1 Main Street, Paris"}


class TestAnalysis:
    def test_committed_and_loser_sets(self):
        wal, store, manager = make_environment()
        winner = manager.begin()
        store.insert(ROW, now=0.0, txn_id=winner.txn_id)
        manager.commit(winner)
        loser = manager.begin()
        store.insert({**ROW, "id": 2}, now=0.0, txn_id=loser.txn_id)
        # Crash: no commit for the loser.
        report = RecoveryManager(wal, {"person": store}).recover()
        assert winner.txn_id in report.committed_txns
        assert loser.txn_id in report.loser_txns

    def test_aborted_transactions_are_not_losers(self):
        wal, store, manager = make_environment()
        txn = manager.begin()
        manager.abort(txn)
        report = RecoveryManager(wal, {"person": store}).recover()
        assert txn.txn_id not in report.loser_txns


class TestUndo:
    def test_loser_insert_is_removed(self):
        wal, store, manager = make_environment()
        loser = manager.begin()
        row_key = store.insert(ROW, now=0.0, txn_id=loser.txn_id)
        report = RecoveryManager(wal, {"person": store}).recover()
        assert report.undone_inserts == 1
        assert not store.exists(row_key)
        # The accurate value is also scrubbed from the log during undo.
        assert b"1 Main Street, Paris" not in wal.raw_image()

    def test_loser_stable_update_rolled_back(self):
        wal, store, manager = make_environment()
        winner = manager.begin()
        row_key = store.insert(ROW, now=0.0, txn_id=winner.txn_id)
        manager.commit(winner)
        loser = manager.begin()
        store.update_stable(row_key, "name", "mallory", now=1.0, txn_id=loser.txn_id)
        report = RecoveryManager(wal, {"person": store}).recover()
        assert report.undone_updates == 1
        assert store.read(row_key).values["name"] == "alice"

    def test_degradation_of_loser_transaction_not_undone(self):
        wal, store, manager = make_environment()
        winner = manager.begin()
        row_key = store.insert(ROW, now=0.0, txn_id=winner.txn_id)
        manager.commit(winner)
        # Degradation runs inside a system transaction that never committed
        # (crash right after) — it must still not be rolled back.
        loser = manager.begin(system=True)
        store.degrade(row_key, "location", LOCATION, to_level=1, now=3600.0,
                      txn_id=loser.txn_id)
        report = RecoveryManager(wal, {"person": store}).recover()
        assert store.read(row_key).values["location"] == "Paris"
        assert report.skipped_undos >= 1


class TestRedo:
    def test_committed_insert_redone_after_heap_loss(self):
        wal, store, manager = make_environment()
        winner = manager.begin()
        row_key = store.insert(ROW, now=0.0, txn_id=winner.txn_id)
        manager.commit(winner)
        # Simulate losing the in-memory row map and the heap record.
        store.heap.delete(store._location(row_key))
        store._locations.clear()
        report = RecoveryManager(wal, {"person": store}).recover()
        assert report.redone_inserts == 1
        assert store.read(row_key).values["name"] == "alice"

    def test_committed_remove_redone(self):
        wal, store, manager = make_environment()
        winner = manager.begin()
        row_key = store.insert(ROW, now=0.0, txn_id=winner.txn_id)
        manager.commit(winner)
        store.remove(row_key, now=5.0, scrub_log=False)
        # Pretend the deletion page write was lost: restore the row image.
        insert_image = [r for r in wal if r.record_type is LogRecordType.INSERT][0].after
        store.restore_row(insert_image)
        report = RecoveryManager(wal, {"person": store}).recover()
        assert report.redone_removes == 1
        assert not store.exists(row_key)

    def test_lagging_degradation_reported(self):
        wal, store, manager = make_environment()
        winner = manager.begin()
        row_key = store.insert(ROW, now=0.0, txn_id=winner.txn_id)
        manager.commit(winner)
        # Append a DEGRADE record without performing the physical degradation,
        # as if the crash hit between WAL append and page flush.
        from repro.storage.serialization import encode_record
        wal.append(LogRecordType.DEGRADE, 0, table="person", row_key=row_key,
                   attribute="location", after=encode_record([1]), timestamp=3600.0)
        report = RecoveryManager(wal, {"person": store}).recover()
        assert report.redone_degrades == 1

    def test_unknown_table_in_log_raises(self):
        wal, store, manager = make_environment()
        wal.append(LogRecordType.INSERT, 1, table="ghost", row_key=1, after=b"x")
        from repro.core.errors import RecoveryError
        with pytest.raises(RecoveryError):
            RecoveryManager(wal, {"person": store}).recover()


class TestSinglePassPrepare:
    def test_recovery_prepares_in_exactly_one_wal_pass(self):
        wal, store, manager = make_environment()
        winner = manager.begin()
        store.insert(ROW, now=0.0, txn_id=winner.txn_id)
        manager.commit(winner)
        loser = manager.begin()
        store.insert({**ROW, "id": 2}, now=0.0, txn_id=loser.txn_id)
        report = RecoveryManager(wal, {"person": store}).recover()
        # Analysis, drop epochs, page directory and row-key highs all come
        # out of the single fused forward pass.
        assert report.wal_prep_passes == 1


class TestSegmentDegradeRecords:
    def rows(self, count):
        return [{**ROW, "id": i} for i in range(1, count + 1)]

    def make_columnar_wave(self, count=5, to_level=1):
        wal, store, manager = make_environment()
        winner = manager.begin()
        keys = [store.insert(row, now=0.0, txn_id=winner.txn_id)
                for row in self.rows(count)]
        manager.commit(winner)
        store.columnarize()
        system = manager.begin(system=True)
        store.degrade_many([(key, "location", LOCATION, to_level)
                            for key in keys], now=3600.0,
                           txn_id=system.txn_id)
        return wal, store, manager, keys

    def test_columnar_wave_logs_chunks_not_rows(self):
        wal, store, _manager, keys = self.make_columnar_wave()
        records = [r for r in wal
                   if r.record_type is LogRecordType.SEGMENT_DEGRADE]
        degrades = [r for r in wal if r.record_type is LogRecordType.DEGRADE]
        assert len(records) == 1 and not degrades
        # The record's row-key field carries the segment id, and the payload
        # lists every affected heap row.
        from repro.storage.wal import decode_segment_degrade
        to_level, row_keys = decode_segment_degrade(records[0].after)
        assert to_level == 1 and sorted(row_keys) == sorted(keys)
        assert records[0].before is None

    def test_recovery_rebuilds_segments_and_level_vectors(self):
        wal, store, manager, keys = self.make_columnar_wave()
        # Crash: lose the in-memory state, keep heap pages + log.
        store._locations.clear()
        store.segments.clear()
        report = RecoveryManager(wal, {"person": store}).recover()
        assert report.wal_prep_passes == 1
        assert report.redone_segment_chunks == 1
        assert report.redone_degrades == 0            # pages were flushed
        segments = store.segments
        assert segments.stats.rebuilds >= 1
        for key in keys:
            segment, position = segments.locate(key)
            assert segment.levels["location"][position] == 1
            assert segment.values["location"][position] == "Paris"

    def test_lagging_rows_counted_and_left_to_the_daemon(self):
        wal, store, manager = make_environment()
        winner = manager.begin()
        keys = [store.insert(row, now=0.0, txn_id=winner.txn_id)
                for row in self.rows(3)]
        manager.commit(winner)
        store.columnarize()
        # A chunk record whose page write never made it: every listed row
        # still stores the accurate value at level 0.
        from repro.storage.wal import encode_segment_degrade
        wal.append(LogRecordType.SEGMENT_DEGRADE, 0, table="person",
                   row_key=0, attribute="location",
                   after=encode_segment_degrade(1, keys), timestamp=3600.0)
        report = RecoveryManager(wal, {"person": store}).recover()
        assert report.redone_segment_chunks == 1
        assert report.redone_degrades == 3            # all three rows lag
        # The values were NOT fabricated from the log (it carries no images).
        for key in keys:
            assert store.read(key).values["location"] == ROW["location"]

    def test_segment_ids_do_not_pollute_row_key_reservation(self):
        """SEGMENT_DEGRADE's row-key field holds a segment id (0, 1, ...);
        it must not drag the store's row-key counter around."""
        wal, store, manager, keys = self.make_columnar_wave(count=2)
        store._locations.clear()
        store.segments.clear()
        RecoveryManager(wal, {"person": store}).recover()
        fresh = store.insert({**ROW, "id": 99}, now=1.0, txn_id=0)
        assert fresh == max(keys) + 1
