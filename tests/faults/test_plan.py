"""FaultPlan DSL: deterministic triggers, seeded coins, fired bookkeeping."""

import threading

from repro.faults import FaultPlan


class TestFailNth:
    def test_fires_on_exactly_the_nth_call(self):
        plan = FaultPlan(seed=1).fail_nth("wal.flush", "enospc", 3)
        assert plan.fire("wal.flush") is None
        assert plan.fire("wal.flush") is None
        event = plan.fire("wal.flush")
        assert event is not None
        assert (event.site, event.kind, event.call_index) == \
            ("wal.flush", "enospc", 3)
        # armed once: call #3 was the only firing
        assert plan.fire("wal.flush") is None

    def test_sites_count_independently(self):
        plan = FaultPlan(seed=1).fail_nth("wal.flush", "enospc", 2)
        plan.fail_nth("pager.sync", "fsync", 1)
        assert plan.fire("wal.flush") is None
        assert plan.fire("pager.sync").kind == "fsync"
        assert plan.fire("wal.flush").kind == "enospc"

    def test_params_ride_the_event(self):
        plan = FaultPlan(seed=1).fail_nth("server.recv", "stall", 1,
                                          seconds=0.25)
        event = plan.fire("server.recv")
        assert event.param("seconds") == 0.25
        assert event.param("missing", "default") == "default"


class TestFailOnce:
    def test_fires_on_the_next_call_only(self):
        plan = FaultPlan(seed=1).fail_once("client.send", "disconnect")
        assert plan.fire("client.send").kind == "disconnect"
        assert plan.fire("client.send") is None


class TestProbability:
    def test_same_seed_same_schedule(self):
        def schedule(seed):
            plan = FaultPlan(seed=seed)
            plan.fail_with_probability("wal.flush", "torn_write", 0.3)
            return [plan.fire("wal.flush") is not None for _ in range(50)]

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)

    def test_max_fires_bounds_the_blast_radius(self):
        plan = FaultPlan(seed=3)
        plan.fail_with_probability("wal.flush", "enospc", 1.0, max_fires=2)
        fired = [plan.fire("wal.flush") for _ in range(10)]
        assert sum(event is not None for event in fired) == 2


class TestBookkeeping:
    def test_first_matching_rule_wins_the_call(self):
        plan = FaultPlan(seed=1)
        plan.fail_nth("wal.flush", "enospc", 1)
        plan.fail_nth("wal.flush", "fsync", 1)
        assert plan.fire("wal.flush").kind == "enospc"
        # the second rule did not also observe call #1
        assert plan.fire("wal.flush") is None

    def test_fired_history_and_describe(self):
        plan = FaultPlan(seed=9).fail_nth("pager.sync", "fsync", 1)
        plan.fire("pager.sync")
        assert plan.fired_kinds() == {"fsync"}
        assert plan.fired_sites() == {"pager.sync"}
        assert plan.calls("pager.sync") == 1
        assert "pager.sync#1 -> fsync" in plan.describe()

    def test_disarm_keeps_counters_and_history(self):
        plan = FaultPlan(seed=1).fail_nth("wal.flush", "enospc", 1)
        plan.fail_nth("wal.flush", "fsync", 2)
        plan.fire("wal.flush")
        plan.disarm()
        assert plan.fire("wal.flush") is None  # rule for call #2 is gone
        assert plan.calls("wal.flush") == 2    # but calls kept counting
        assert plan.fired_kinds() == {"enospc"}

    def test_concurrent_fire_counts_every_call(self):
        plan = FaultPlan(seed=1).fail_nth("wal.flush", "enospc", 500)
        threads = [threading.Thread(
            target=lambda: [plan.fire("wal.flush") for _ in range(100)])
            for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert plan.calls("wal.flush") == 800
        assert plan.fired_kinds() == {"enospc"}
