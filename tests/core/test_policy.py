"""Tests for purposes, policy registries and table policies."""

import pytest

from repro.core.errors import CatalogError, PolicyError
from repro.core.lcp import AttributeLCP
from repro.core.policy import AccuracyRequirement, PolicyRegistry, Purpose, TablePolicy


class TestPurpose:
    def test_require_and_lookup(self, location_tree):
        purpose = Purpose("stat").require("person", "location", "country")
        assert purpose.accuracy_for("person", "location", location_tree) == 3
        assert purpose.accuracy_for("PERSON", "LOCATION", location_tree) == 3

    def test_numeric_level(self, location_tree):
        purpose = Purpose("raw").require("person", "location", 2)
        assert purpose.accuracy_for("person", "location", location_tree) == 2

    def test_numeric_level_out_of_range(self, location_tree):
        purpose = Purpose("bad").require("person", "location", 42)
        with pytest.raises(PolicyError):
            purpose.accuracy_for("person", "location", location_tree)

    def test_unmentioned_column_returns_none(self, location_tree):
        purpose = Purpose("stat")
        assert purpose.accuracy_for("person", "location", location_tree) is None

    def test_describe(self):
        purpose = Purpose("stat").require("person", "location", "country")
        text = purpose.describe()
        assert "stat" in text and "country" in text.lower()

    def test_requirement_resolution_by_name(self, salary_scheme):
        requirement = AccuracyRequirement("person", "salary", "range1000")
        assert requirement.resolve(salary_scheme) == 2


class TestPolicyRegistry:
    def test_register_and_get_domain(self, location_tree):
        registry = PolicyRegistry()
        registry.register_domain(location_tree)
        assert registry.domain("location") is location_tree
        assert registry.has_domain("LOCATION")

    def test_duplicate_domain_rejected(self, location_tree):
        registry = PolicyRegistry()
        registry.register_domain(location_tree)
        with pytest.raises(CatalogError):
            registry.register_domain(location_tree)

    def test_unknown_domain_raises(self):
        with pytest.raises(CatalogError):
            PolicyRegistry().domain("nope")

    def test_register_and_get_policy(self, location_lcp):
        registry = PolicyRegistry()
        registry.register_policy(location_lcp)
        assert registry.policy("location_lcp") is location_lcp
        assert registry.has_policy("LOCATION_LCP")

    def test_duplicate_policy_rejected(self, location_lcp):
        registry = PolicyRegistry()
        registry.register_policy(location_lcp)
        with pytest.raises(CatalogError):
            registry.register_policy(location_lcp)

    def test_unknown_policy_raises(self):
        with pytest.raises(CatalogError):
            PolicyRegistry().policy("ghost")

    def test_listing(self, location_tree, location_lcp):
        registry = PolicyRegistry()
        registry.register_domain(location_tree)
        registry.register_policy(location_lcp)
        assert "location" in registry.domains()
        assert "location_lcp" in registry.policies()


class TestTablePolicy:
    @pytest.fixture
    def table_policy(self, location_lcp, salary_lcp):
        policy = TablePolicy(table="person")
        policy.add_column("location", location_lcp)
        policy.add_column("salary", salary_lcp)
        return policy

    def test_degradable_columns(self, table_policy):
        assert set(table_policy.degradable_columns()) == {"location", "salary"}
        assert table_policy.has_degradable_columns()

    def test_policy_for(self, table_policy, location_lcp):
        assert table_policy.policy_for("LOCATION") is location_lcp
        with pytest.raises(PolicyError):
            table_policy.policy_for("name")

    def test_tuple_lcp_combines_columns(self, table_policy):
        tuple_lcp = table_policy.tuple_lcp()
        assert set(tuple_lcp.attributes) == {"location", "salary"}

    def test_override_requires_selector_column(self, table_policy, location_tree):
        strict = AttributeLCP(location_tree, transitions=["1 min", "1 h", "1 d", "1 w"],
                              name="strict")
        with pytest.raises(PolicyError):
            table_policy.register_override(42, {"location": strict})

    def test_override_changes_policy_for_selected_tuples(self, table_policy, location_tree):
        table_policy.selector_column = "user_id"
        strict = AttributeLCP(location_tree, transitions=["1 min", "1 h", "1 d", "1 w"],
                              name="strict")
        table_policy.register_override(42, {"location": strict})
        assert table_policy.policy_for("location", selector_value=42) is strict
        assert table_policy.policy_for("location", selector_value=7) is not strict
        assert table_policy.tuple_lcp(42).attributes["location"] is strict

    def test_describe(self, table_policy):
        text = table_policy.describe()
        assert "person" in text and "location" in text
