"""Tests for generalization trees and degradation functions (paper Fig. 1)."""

import pytest

from repro.core.errors import GeneralizationError, UnknownValueError
from repro.core.generalization import (
    GeneralizationTree,
    NumericRangeGeneralization,
    TimestampGeneralization,
)
from repro.core.values import SUPPRESSED


@pytest.fixture
def small_tree():
    return GeneralizationTree.from_paths(
        "location",
        [
            ("1 rue A, Paris", "Paris", "Ile-de-France", "France"),
            ("2 rue B, Paris", "Paris", "Ile-de-France", "France"),
            ("3 laan C, Enschede", "Enschede", "Overijssel", "Netherlands"),
        ],
        level_names=["address", "city", "region", "country"],
    )


class TestGeneralizationTree:
    def test_num_levels_includes_suppressed_root(self, small_tree):
        assert small_tree.num_levels == 5
        assert small_tree.max_level == 4

    def test_level_names(self, small_tree):
        assert small_tree.level_name(0) == "address"
        assert small_tree.level_name(3) == "country"
        assert small_tree.level_name(4) == "suppressed"

    def test_level_of_name_case_insensitive(self, small_tree):
        assert small_tree.level_of_name("CITY") == 1
        with pytest.raises(GeneralizationError):
            small_tree.level_of_name("continent")

    def test_generalize_leaf_upwards(self, small_tree):
        assert small_tree.generalize("1 rue A, Paris", 1) == "Paris"
        assert small_tree.generalize("1 rue A, Paris", 2) == "Ile-de-France"
        assert small_tree.generalize("1 rue A, Paris", 3) == "France"
        assert small_tree.generalize("1 rue A, Paris", 4) is SUPPRESSED

    def test_generalize_same_level_is_identity(self, small_tree):
        assert small_tree.generalize("1 rue A, Paris", 0) == "1 rue A, Paris"
        assert small_tree.generalize("Paris", 1, from_level=1) == "Paris"

    def test_generalize_from_intermediate_level(self, small_tree):
        assert small_tree.generalize("Enschede", 3, from_level=1) == "Netherlands"

    def test_generalize_backwards_raises(self, small_tree):
        with pytest.raises(GeneralizationError):
            small_tree.generalize("Paris", 0, from_level=1)

    def test_unknown_value_raises(self, small_tree):
        with pytest.raises(UnknownValueError):
            small_tree.generalize("Atlantis", 1)

    def test_unknown_value_at_wrong_level_raises(self, small_tree):
        with pytest.raises(UnknownValueError):
            small_tree.generalize("Paris", 2, from_level=0)

    def test_suppressed_only_valid_at_root(self, small_tree):
        assert small_tree.generalize(SUPPRESSED, 4, from_level=4) is SUPPRESSED
        with pytest.raises(UnknownValueError):
            small_tree.generalize(SUPPRESSED, 4, from_level=1)

    def test_values_at_level(self, small_tree):
        assert set(small_tree.values_at_level(1)) == {"Paris", "Enschede"}
        assert set(small_tree.values_at_level(3)) == {"France", "Netherlands"}
        assert small_tree.values_at_level(4) == [SUPPRESSED]

    def test_leaves(self, small_tree):
        assert len(small_tree.leaves()) == 3

    def test_children_of(self, small_tree):
        assert set(small_tree.children_of("Paris", 1)) == {"1 rue A, Paris", "2 rue B, Paris"}
        assert small_tree.children_of("France", 3) == ["Ile-de-France"]

    def test_level_of_unique_values(self, small_tree):
        assert small_tree.level_of("Paris") == 1
        assert small_tree.level_of("France") == 3
        with pytest.raises(UnknownValueError):
            small_tree.level_of("Mars")

    def test_contains(self, small_tree):
        assert small_tree.contains("Paris", 1)
        assert not small_tree.contains("Paris", 0)

    def test_describe_mentions_levels(self, small_tree):
        text = small_tree.describe()
        assert "address" in text and "country" in text

    def test_invalid_level_raises(self, small_tree):
        with pytest.raises(GeneralizationError):
            small_tree.generalize("Paris", 9, from_level=1)

    def test_uneven_paths_rejected(self):
        with pytest.raises(GeneralizationError):
            GeneralizationTree.from_paths("bad", [("a", "b"), ("c", "d", "e")])

    def test_conflicting_parent_rejected(self):
        # "Paris" cannot be both in France and Germany in a *tree*.
        with pytest.raises(GeneralizationError):
            GeneralizationTree.from_paths(
                "bad", [("1", "Paris", "France"), ("2", "Paris", "Germany")]
            )

    def test_empty_paths_rejected(self):
        with pytest.raises(GeneralizationError):
            GeneralizationTree.from_paths("bad", [])

    def test_from_nested(self):
        tree = GeneralizationTree.from_nested(
            "product",
            {"Food": {"Fruit": ["apple", "pear"], "Dairy": ["milk"]},
             "Tools": {"Hand": ["hammer"]}},
            level_names=["item", "group", "department"],
        )
        assert tree.generalize("apple", 1) == "Fruit"
        assert tree.generalize("hammer", 2) == "Tools"
        assert tree.num_levels == 4


class TestNumericRangeGeneralization:
    @pytest.fixture
    def salary(self):
        return NumericRangeGeneralization("salary", widths=[100, 1000, 10000])

    def test_levels(self, salary):
        assert salary.num_levels == 5
        assert salary.level_name(0) == "exact"
        assert salary.level_name(2) == "range1000"
        assert salary.level_name(4) == "suppressed"

    def test_generalize_to_ranges(self, salary):
        assert salary.generalize(2345, 1) == "2300-2400"
        assert salary.generalize(2345, 2) == "2000-3000"
        assert salary.generalize(2345, 3) == "0-10000"
        assert salary.generalize(2345, 4) is SUPPRESSED

    def test_generalize_from_range(self, salary):
        assert salary.generalize("2300-2400", 2, from_level=1) == "2000-3000"

    def test_parse_and_format_range(self, salary):
        assert salary.parse_range("2000-3000") == (2000.0, 3000.0)
        assert salary.format_range(500, 600) == "500-600"
        with pytest.raises(GeneralizationError):
            salary.parse_range("everything")

    def test_level_zero_identity(self, salary):
        assert salary.generalize(1234, 0) == 1234

    def test_negative_values_bucket_correctly(self, salary):
        assert salary.generalize(-50, 1) == "-100-0"

    def test_backwards_raises(self, salary):
        with pytest.raises(GeneralizationError):
            salary.generalize("2000-3000", 1, from_level=2)

    def test_decreasing_widths_rejected(self):
        with pytest.raises(GeneralizationError):
            NumericRangeGeneralization("bad", widths=[1000, 100])

    def test_zero_width_rejected(self):
        with pytest.raises(GeneralizationError):
            NumericRangeGeneralization("bad", widths=[0])

    def test_values_at_level_only_finite_at_root(self, salary):
        assert salary.values_at_level(4) == [SUPPRESSED]
        assert salary.values_at_level(1) is None


class TestTimestampGeneralization:
    @pytest.fixture
    def times(self):
        return TimestampGeneralization("event_time")

    def test_levels(self, times):
        assert times.num_levels == 6
        assert times.level_name(1) == "minute"
        assert times.level_name(4) == "month"

    def test_bucketing(self, times):
        stamp = 3 * 86400 + 7 * 3600 + 42 * 60 + 13
        assert times.generalize(stamp, 1) == 3 * 86400 + 7 * 3600 + 42 * 60
        assert times.generalize(stamp, 2) == 3 * 86400 + 7 * 3600
        assert times.generalize(stamp, 3) == 3 * 86400
        assert times.generalize(stamp, 5) is SUPPRESSED

    def test_non_increasing_buckets_rejected(self):
        with pytest.raises(GeneralizationError):
            TimestampGeneralization("bad", buckets=[("hour", 3600), ("minute", 60)])
