"""Tests for typed values, sentinels and the total value ordering."""

import pytest

from repro.core.errors import SchemaError
from repro.core.values import (
    NULL,
    REMOVED,
    SUPPRESSED,
    AccuracyTagged,
    ValueType,
    coerce,
    is_missing,
    sort_key,
)


class TestSentinels:
    def test_sentinels_are_falsy(self):
        assert not SUPPRESSED
        assert not REMOVED
        assert not NULL

    def test_sentinels_compare_only_to_themselves(self):
        assert SUPPRESSED == SUPPRESSED
        assert SUPPRESSED != REMOVED
        assert SUPPRESSED != "SUPPRESSED"

    def test_sentinels_hashable_and_distinct(self):
        assert len({SUPPRESSED, REMOVED, NULL}) == 3

    def test_sentinels_sort_after_regular_values(self):
        values = [SUPPRESSED, "zzz", 10, NULL, 3.5, "aaa"]
        ordered = sorted(values, key=sort_key)
        regular = [v for v in ordered if not is_missing(v)]
        sentinels = [v for v in ordered if is_missing(v)]
        assert ordered == regular + sentinels
        assert regular == [3.5, 10, "aaa", "zzz"]

    def test_str_representation(self):
        assert str(SUPPRESSED) == "SUPPRESSED"
        assert repr(REMOVED) == "<REMOVED>"


class TestValueType:
    def test_from_name_aliases(self):
        assert ValueType.from_name("integer") is ValueType.INT
        assert ValueType.from_name("VARCHAR") is ValueType.TEXT
        assert ValueType.from_name("double") is ValueType.FLOAT
        assert ValueType.from_name("boolean") is ValueType.BOOL

    def test_from_name_unknown_raises(self):
        with pytest.raises(SchemaError):
            ValueType.from_name("blob")

    def test_python_type(self):
        assert ValueType.INT.python_type is int
        assert ValueType.TEXT.python_type is str


class TestCoerce:
    def test_none_becomes_null(self):
        assert coerce(None, ValueType.INT) is NULL

    def test_int_coercion(self):
        assert coerce("42", ValueType.INT) == 42
        assert coerce(3.0, ValueType.INT) == 3

    def test_non_integral_float_to_int_raises(self):
        with pytest.raises(SchemaError):
            coerce(3.5, ValueType.INT)

    def test_float_coercion(self):
        assert coerce("2.5", ValueType.FLOAT) == 2.5

    def test_text_coercion(self):
        assert coerce(123, ValueType.TEXT) == "123"
        assert coerce(b"abc", ValueType.TEXT) == "abc"

    def test_bool_coercion(self):
        assert coerce("true", ValueType.BOOL) is True
        assert coerce("no", ValueType.BOOL) is False
        with pytest.raises(SchemaError):
            coerce("maybe", ValueType.BOOL)

    def test_sentinels_pass_through(self):
        assert coerce(SUPPRESSED, ValueType.TEXT) is SUPPRESSED
        assert coerce(REMOVED, ValueType.INT) is REMOVED

    def test_bad_int_raises(self):
        with pytest.raises(SchemaError):
            coerce("not a number", ValueType.INT)


class TestHelpers:
    def test_is_missing(self):
        assert is_missing(NULL)
        assert is_missing(SUPPRESSED)
        assert is_missing(REMOVED)
        assert is_missing(None)
        assert not is_missing(0)
        assert not is_missing("")

    def test_sort_key_orders_numbers_before_strings(self):
        assert sort_key(5) < sort_key("abc")

    def test_sort_key_numbers_mixed_types(self):
        assert sort_key(1) < sort_key(2.5)
        assert sort_key(2.5) < sort_key(3)

    def test_accuracy_tagged_str(self):
        tagged = AccuracyTagged(value="Paris", level=1, level_name="city")
        assert "Paris" in str(tagged)
        assert "city" in str(tagged)
