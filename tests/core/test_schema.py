"""Tests for table schemas with stable and degradable columns."""

import pytest

from repro.core.errors import SchemaError
from repro.core.schema import Column, TableSchema
from repro.core.values import NULL, ValueType


@pytest.fixture
def person_schema():
    return TableSchema("person", [
        Column("id", "INT", primary_key=True),
        Column("name", "TEXT"),
        Column("location", "TEXT", degradable=True, domain="location",
               policy="location_lcp"),
        Column("salary", "INT", degradable=True, domain="salary"),
        Column("active", "BOOL", nullable=False),
    ])


class TestColumn:
    def test_type_from_string(self):
        assert Column("a", "integer").value_type is ValueType.INT

    def test_degradable_requires_domain(self):
        with pytest.raises(SchemaError):
            Column("loc", "TEXT", degradable=True)

    def test_primary_key_cannot_be_degradable(self):
        with pytest.raises(SchemaError):
            Column("id", "INT", primary_key=True, degradable=True, domain="d")

    def test_coerce_respects_nullability(self):
        nullable = Column("x", "INT")
        assert nullable.coerce(None) is NULL
        strict = Column("y", "INT", nullable=False)
        with pytest.raises(SchemaError):
            strict.coerce(None)

    def test_describe(self):
        column = Column("location", "TEXT", degradable=True, domain="location",
                        policy="p")
        text = column.describe()
        assert "DEGRADABLE" in text and "POLICY p" in text

    def test_names_are_lowercased(self):
        assert Column("LOCATION", "TEXT").name == "location"


class TestTableSchema:
    def test_column_lookup(self, person_schema):
        assert person_schema.column("NAME").name == "name"
        assert person_schema.has_column("salary")
        assert not person_schema.has_column("ghost")
        with pytest.raises(SchemaError):
            person_schema.column("ghost")

    def test_column_index(self, person_schema):
        assert person_schema.column_index("id") == 0
        assert person_schema.column_index("active") == 4
        with pytest.raises(SchemaError):
            person_schema.column_index("ghost")

    def test_degradable_and_stable_partition(self, person_schema):
        degradable = {c.name for c in person_schema.degradable_columns()}
        stable = {c.name for c in person_schema.stable_columns()}
        assert degradable == {"location", "salary"}
        assert stable == {"id", "name", "active"}
        assert person_schema.has_degradable_columns

    def test_primary_key_detected(self, person_schema):
        assert person_schema.primary_key == "id"

    def test_multiple_primary_keys_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", "INT", primary_key=True),
                              Column("b", "INT", primary_key=True)])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", "INT"), Column("A", "TEXT")])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_coerce_row_from_dict(self, person_schema):
        values = person_schema.coerce_row({
            "id": 1, "name": "alice", "location": "Paris", "salary": "2500",
            "active": True,
        })
        assert values == (1, "alice", "Paris", 2500, True)

    def test_coerce_row_from_sequence(self, person_schema):
        values = person_schema.coerce_row([2, "bob", "Lyon", 3000, False])
        assert values[0] == 2 and values[-1] is False

    def test_coerce_row_unknown_column_rejected(self, person_schema):
        with pytest.raises(SchemaError):
            person_schema.coerce_row({"id": 1, "ghost": 5, "active": True})

    def test_coerce_row_wrong_arity_rejected(self, person_schema):
        with pytest.raises(SchemaError):
            person_schema.coerce_row([1, "bob"])

    def test_row_dict_roundtrip(self, person_schema):
        values = person_schema.coerce_row([1, "a", "Paris", 100, True])
        as_dict = person_schema.row_dict(values)
        assert as_dict["name"] == "a"
        assert person_schema.coerce_row(as_dict) == values

    def test_row_dict_wrong_arity(self, person_schema):
        with pytest.raises(SchemaError):
            person_schema.row_dict([1, 2])

    def test_describe_is_create_table_like(self, person_schema):
        text = person_schema.describe()
        assert text.startswith("CREATE TABLE person")
        assert "PRIMARY KEY" in text
