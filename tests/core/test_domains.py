"""Tests for the ready-made attribute domains."""

import pytest

from repro.core.domains import (
    addresses_for_city,
    build_diagnosis_tree,
    build_location_tree,
    build_salary_ranges,
    build_timestamp_scheme,
    build_websearch_tree,
    standard_domains,
)
from repro.core.values import SUPPRESSED


class TestLocationDomain:
    def test_levels_match_paper_figure(self, location_tree):
        assert [location_tree.level_name(i) for i in range(location_tree.num_levels)] == [
            "address", "city", "region", "country", "suppressed",
        ]

    def test_every_address_generalizes_to_its_city(self, location_tree):
        for city in location_tree.values_at_level(1):
            for address in addresses_for_city(city):
                assert location_tree.generalize(address, 1) == city

    def test_countries_present(self, location_tree):
        countries = set(location_tree.values_at_level(3))
        assert {"France", "Netherlands", "Germany"} <= countries

    def test_full_chain_reaches_suppressed(self, location_tree):
        address = location_tree.leaves()[0]
        assert location_tree.generalize(address, 4) is SUPPRESSED


class TestOtherDomains:
    def test_salary_levels(self, salary_scheme):
        assert salary_scheme.level_name(2) == "range1000"
        assert salary_scheme.generalize(2765, 2) == "2000-3000"

    def test_websearch_tree(self, websearch_tree):
        query = websearch_tree.leaves()[0]
        topic = websearch_tree.generalize(query, 1)
        category = websearch_tree.generalize(query, 2)
        assert topic in websearch_tree.values_at_level(1)
        assert category in websearch_tree.values_at_level(2)

    def test_diagnosis_tree(self, diagnosis_tree):
        assert diagnosis_tree.generalize("asthma", 2) == "pulmonology"
        assert diagnosis_tree.generalize("type 2 diabetes", 1) == "metabolic disorders"

    def test_timestamp_scheme(self):
        scheme = build_timestamp_scheme()
        assert scheme.num_levels == 6

    def test_standard_domains_bundle(self):
        domains = standard_domains()
        assert set(domains) == {"location", "salary", "websearch", "diagnosis", "event_time"}
        # All freshly built objects, independent across calls.
        assert standard_domains()["location"] is not domains["location"]
