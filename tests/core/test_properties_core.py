"""Property-based tests on the core degradation model (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.domains import build_location_tree, build_salary_ranges
from repro.core.generalization import NumericRangeGeneralization
from repro.core.lcp import AttributeLCP
from repro.core.values import SUPPRESSED, sort_key

LOCATION = build_location_tree()
SALARY = build_salary_ranges()
ADDRESSES = LOCATION.leaves()

levels = st.integers(min_value=0, max_value=LOCATION.max_level)
addresses = st.sampled_from(ADDRESSES)


class TestGeneralizationProperties:
    @given(value=addresses, level=levels)
    def test_degradation_is_idempotent(self, value, level):
        """f_k(f_k(x)) == f_k(x)."""
        once = LOCATION.generalize(value, level)
        twice = LOCATION.generalize(once, level, from_level=level)
        assert once == twice

    @given(value=addresses, first=levels, second=levels)
    def test_degradation_composes(self, value, first, second):
        """Degrading to j then to k >= j equals degrading straight to k."""
        low, high = sorted((first, second))
        via = LOCATION.generalize(LOCATION.generalize(value, low), high, from_level=low)
        direct = LOCATION.generalize(value, high)
        assert via == direct

    @given(value=addresses, level=levels)
    def test_result_belongs_to_target_level(self, value, level):
        result = LOCATION.generalize(value, level)
        assert result in LOCATION.values_at_level(level)

    @given(value=addresses)
    def test_root_is_always_suppressed(self, value):
        assert LOCATION.generalize(value, LOCATION.max_level) is SUPPRESSED

    @given(value=st.integers(min_value=-10**6, max_value=10**6),
           level=st.integers(min_value=1, max_value=3))
    def test_numeric_ranges_contain_their_value(self, value, level):
        result = SALARY.generalize(value, level)
        low, high = SALARY.parse_range(result)
        assert low <= value < high

    @given(value=st.integers(min_value=-10**6, max_value=10**6),
           first=st.integers(min_value=1, max_value=3),
           second=st.integers(min_value=1, max_value=3))
    def test_numeric_ranges_nest(self, value, first, second):
        """The coarser range always contains the finer range."""
        low_level, high_level = sorted((first, second))
        fine = SALARY.parse_range(SALARY.generalize(value, low_level))
        coarse = SALARY.parse_range(SALARY.generalize(value, high_level))
        assert coarse[0] <= fine[0] and fine[1] <= coarse[1]

    @given(widths=st.lists(st.integers(min_value=1, max_value=1000), min_size=1,
                           max_size=4))
    def test_arbitrary_nondecreasing_widths_accepted(self, widths):
        widths = sorted(widths)
        scheme = NumericRangeGeneralization("x", widths=widths)
        assert scheme.num_levels == len(widths) + 2


DELAYS = st.lists(st.integers(min_value=1, max_value=10**6), min_size=4, max_size=4)


class TestLCPProperties:
    @given(delays=DELAYS, elapsed=st.floats(min_value=0, max_value=10**7,
                                            allow_nan=False))
    def test_state_is_monotone_in_time(self, delays, elapsed):
        lcp = AttributeLCP(LOCATION, transitions=delays)
        earlier = lcp.state_at(elapsed * 0.5)
        later = lcp.state_at(elapsed)
        assert later >= earlier

    @given(delays=DELAYS)
    def test_entry_times_are_nondecreasing(self, delays):
        lcp = AttributeLCP(LOCATION, transitions=delays)
        entries = lcp.entry_times()
        assert entries == sorted(entries)
        assert entries[-1] == sum(delays)

    @given(delays=DELAYS)
    def test_shortest_delay_bounds_all_delays(self, delays):
        lcp = AttributeLCP(LOCATION, transitions=delays)
        assert lcp.shortest_delay == min(delays)

    @given(delays=DELAYS, elapsed=st.floats(min_value=0, max_value=10**7,
                                            allow_nan=False))
    def test_level_at_never_exceeds_final(self, delays, elapsed):
        lcp = AttributeLCP(LOCATION, transitions=delays)
        assert 0 <= lcp.level_at(elapsed) <= lcp.final_level


class TestSortKeyProperties:
    @given(st.lists(st.one_of(st.integers(), st.floats(allow_nan=False),
                              st.text(), st.booleans()), max_size=30))
    def test_sort_key_gives_total_order(self, values):
        ordered = sorted(values, key=sort_key)
        # Sorting twice is stable and idempotent.
        assert sorted(ordered, key=sort_key) == ordered
