"""Tests for attribute and tuple life cycle policies (paper Fig. 2 / Fig. 3)."""

import pytest

from repro.core.clock import DAY, HOUR, MONTH
from repro.core.errors import PolicyError
from repro.core.lcp import NEVER, AttributeLCP, Transition, TupleLCP, freeze_state, thaw_state
from repro.core.values import SUPPRESSED


class TestTransition:
    def test_timed_transition(self):
        transition = Transition(delay=3600.0)
        assert transition.timed
        assert "hour" in transition.describe()

    def test_event_transition(self):
        transition = Transition(event="consent_withdrawn")
        assert not transition.timed
        assert "consent_withdrawn" in transition.describe()

    def test_both_or_neither_rejected(self):
        with pytest.raises(PolicyError):
            Transition()
        with pytest.raises(PolicyError):
            Transition(delay=1.0, event="x")

    def test_negative_delay_rejected(self):
        with pytest.raises(PolicyError):
            Transition(delay=-1.0)


class TestAttributeLCP:
    @pytest.fixture
    def lcp(self, location_tree):
        # Paper Fig. 2: address -(1h)-> city -(1d)-> region -(1mo)-> country -(3mo)-> gone
        return AttributeLCP(location_tree,
                            transitions=["1 hour", "1 day", "1 month", "3 months"],
                            name="location_lcp")

    def test_defaults_use_every_level(self, lcp, location_tree):
        assert lcp.states == list(range(location_tree.num_levels))
        assert lcp.num_states == 5

    def test_state_levels_and_names(self, lcp):
        assert lcp.state_level(0) == 0
        assert lcp.state_level(4) == 4
        assert lcp.state_names()[0] == "address"
        assert lcp.state_names()[-1] == "suppressed"

    def test_level_to_state(self, lcp):
        assert lcp.level_to_state(3) == 3
        with pytest.raises(PolicyError):
            AttributeLCP(lcp.scheme, states=[0, 2, 4],
                         transitions=["1 h", "1 d"]).level_to_state(1)

    def test_entry_times_accumulate(self, lcp):
        entries = lcp.entry_times()
        assert entries[0] == 0.0
        assert entries[1] == HOUR
        assert entries[2] == HOUR + DAY
        assert entries[3] == HOUR + DAY + MONTH
        assert entries[4] == HOUR + DAY + MONTH + 3 * MONTH

    def test_state_at_times(self, lcp):
        assert lcp.state_at(0) == 0
        assert lcp.state_at(HOUR - 1) == 0
        assert lcp.state_at(HOUR) == 1
        assert lcp.state_at(HOUR + DAY) == 2
        assert lcp.state_at(HOUR + DAY + MONTH + 3 * MONTH + 1) == 4

    def test_level_at(self, lcp):
        assert lcp.level_at(0) == 0
        assert lcp.level_at(HOUR) == 1

    def test_negative_elapsed_rejected(self, lcp):
        with pytest.raises(PolicyError):
            lcp.state_at(-1)

    def test_next_transition(self, lcp):
        when, state = lcp.next_transition(0)
        assert when == HOUR and state == 1
        when, state = lcp.next_transition(HOUR)
        assert when == HOUR + DAY and state == 2
        assert lcp.next_transition(10 * MONTH) is None

    def test_shortest_delay_and_lifetime(self, lcp):
        assert lcp.shortest_delay == HOUR
        assert lcp.total_lifetime == HOUR + DAY + MONTH + 3 * MONTH

    def test_fully_suppresses(self, lcp):
        assert lcp.fully_suppresses

    def test_partial_policy_not_fully_suppressing(self, location_tree):
        partial = AttributeLCP(location_tree, states=[0, 1, 3],
                               transitions=["1 h", "1 d"])
        assert not partial.fully_suppresses
        assert partial.final_level == 3

    def test_degrade_uses_scheme(self, lcp):
        assert lcp.degrade("1 Main Street, Paris", 0, 1) == "Paris"
        assert lcp.degrade("Paris", 1, 3) == "France"
        assert lcp.degrade("France", 3, 4) is SUPPRESSED

    def test_degrade_backwards_rejected(self, lcp):
        with pytest.raises(PolicyError):
            lcp.degrade("Paris", 1, 0)

    def test_states_must_increase(self, location_tree):
        with pytest.raises(PolicyError):
            AttributeLCP(location_tree, states=[0, 2, 1], transitions=["1 h", "1 h"])

    def test_at_least_two_states(self, location_tree):
        with pytest.raises(PolicyError):
            AttributeLCP(location_tree, states=[0], transitions=[])

    def test_transition_count_must_match(self, location_tree):
        with pytest.raises(PolicyError):
            AttributeLCP(location_tree, states=[0, 1, 2], transitions=["1 h"])

    def test_transitions_required(self, location_tree):
        with pytest.raises(PolicyError):
            AttributeLCP(location_tree, states=[0, 1])

    def test_level_outside_domain_rejected(self, location_tree):
        with pytest.raises(PolicyError):
            AttributeLCP(location_tree, states=[0, 9], transitions=["1 h"])

    def test_describe_shows_chain(self, lcp):
        text = lcp.describe()
        assert "d0=address" in text
        assert "-->" in text

    def test_event_transition_blocks_until_fired(self, location_tree):
        lcp = AttributeLCP(location_tree, states=[0, 1, 4],
                           transitions=["1 h", {"event": "consent_withdrawn"}])
        assert lcp.state_at(10 * MONTH) == 1
        assert lcp.total_lifetime == NEVER
        fired = {"consent_withdrawn": 2 * HOUR}
        assert lcp.state_at(2 * HOUR, events=fired) == 2
        assert lcp.state_at(90 * 60, events=fired) == 1

    def test_event_before_timed_entry_does_not_skip(self, location_tree):
        lcp = AttributeLCP(location_tree, states=[0, 1, 4],
                           transitions=["1 h", {"event": "audit"}])
        # Event fired before the first timed transition: entry to the final
        # state cannot precede entry to the intermediate state.
        entries = lcp.entry_times({"audit": 60.0})
        assert entries[2] >= entries[1]


class TestTupleLCP:
    @pytest.fixture
    def tuple_lcp(self, location_tree, salary_scheme):
        location = AttributeLCP(location_tree,
                                transitions=["1 hour", "1 day", "1 month", "3 months"])
        salary = AttributeLCP(salary_scheme, states=[0, 2, 4],
                              transitions=["2 hours", "2 days"])
        return TupleLCP({"location": location, "salary": salary})

    def test_initial_and_final_states(self, tuple_lcp):
        assert thaw_state(tuple_lcp.initial_state) == {"location": 0, "salary": 0}
        assert thaw_state(tuple_lcp.final_state) == {"location": 4, "salary": 2}

    def test_state_at_combines_attributes(self, tuple_lcp):
        assert tuple_lcp.state_at(0) == {"location": 0, "salary": 0}
        assert tuple_lcp.state_at(HOUR) == {"location": 1, "salary": 0}
        assert tuple_lcp.state_at(2 * HOUR) == {"location": 1, "salary": 1}
        assert tuple_lcp.state_at(100 * MONTH) == {"location": 4, "salary": 2}

    def test_levels_at(self, tuple_lcp):
        levels = tuple_lcp.levels_at(2 * HOUR)
        assert levels == {"location": 1, "salary": 2}

    def test_transition_schedule_is_chronological_chain(self, tuple_lcp):
        schedule = tuple_lcp.transition_schedule()
        times = [when for when, _state in schedule]
        assert times == sorted(times)
        assert schedule[0][1] == tuple_lcp.initial_state
        assert schedule[-1][1] == tuple_lcp.final_state

    def test_visited_states_count(self, tuple_lcp):
        # 4 location transitions + 2 salary transitions + initial state, all at
        # distinct instants -> 7 visited tuple states.
        assert tuple_lcp.num_visited_states() == 7

    def test_reachable_lattice_size(self, tuple_lcp):
        assert len(tuple_lcp.reachable_states()) == 5 * 3

    def test_visited_chain_is_within_lattice(self, tuple_lcp):
        lattice = set(tuple_lcp.reachable_states())
        assert set(tuple_lcp.visited_states()) <= lattice

    def test_successors_advance_one_attribute(self, tuple_lcp):
        successors = tuple_lcp.successors({"location": 0, "salary": 0})
        assert freeze_state({"location": 1, "salary": 0}) in successors
        assert freeze_state({"location": 0, "salary": 1}) in successors
        assert len(successors) == 2

    def test_final_state_has_no_successors(self, tuple_lcp):
        assert tuple_lcp.successors(thaw_state(tuple_lcp.final_state)) == []

    def test_is_final(self, tuple_lcp):
        assert tuple_lcp.is_final(thaw_state(tuple_lcp.final_state))
        assert not tuple_lcp.is_final(thaw_state(tuple_lcp.initial_state))

    def test_total_lifetime_is_max_of_attributes(self, tuple_lcp):
        assert tuple_lcp.total_lifetime == HOUR + DAY + MONTH + 3 * MONTH

    def test_shortest_delay_is_min_over_attributes(self, tuple_lcp):
        assert tuple_lcp.shortest_delay == HOUR

    def test_empty_tuple_lcp_rejected(self):
        with pytest.raises(PolicyError):
            TupleLCP({})

    def test_describe(self, tuple_lcp):
        text = tuple_lcp.describe()
        assert "location" in text and "salary" in text
