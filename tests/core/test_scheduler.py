"""Tests for the degradation scheduler."""

import pytest

from repro.core.clock import DAY, HOUR, MONTH
from repro.core.errors import DegradationError
from repro.core.lcp import AttributeLCP, TupleLCP
from repro.core.scheduler import DegradationScheduler, DegradationStep


@pytest.fixture
def tuple_lcp(location_tree):
    return TupleLCP({
        "location": AttributeLCP(location_tree,
                                 transitions=["1 hour", "1 day", "1 month", "3 months"]),
    })


@pytest.fixture
def two_attr_lcp(location_tree, salary_scheme):
    return TupleLCP({
        "location": AttributeLCP(location_tree,
                                 transitions=["1 hour", "1 day", "1 month", "3 months"]),
        "salary": AttributeLCP(salary_scheme, states=[0, 2, 4],
                               transitions=["2 hours", "2 days"]),
    })


def collect_applier(applied):
    def applier(step: DegradationStep) -> bool:
        applied.append(step)
        return True
    return applier


class TestRegistration:
    def test_register_and_query_state(self, tuple_lcp):
        scheduler = DegradationScheduler()
        scheduler.register("r1", tuple_lcp, inserted_at=0.0)
        assert scheduler.is_registered("r1")
        assert scheduler.current_state("r1") == {"location": 0}
        assert scheduler.registered_count() == 1

    def test_double_registration_rejected(self, tuple_lcp):
        scheduler = DegradationScheduler()
        scheduler.register("r1", tuple_lcp, inserted_at=0.0)
        with pytest.raises(DegradationError):
            scheduler.register("r1", tuple_lcp, inserted_at=1.0)

    def test_unknown_record_state_is_empty(self):
        # Unregistered (or completed/cancelled) ids report an empty state —
        # "no pending degradation" — instead of raising.
        scheduler = DegradationScheduler()
        assert scheduler.current_state("ghost") == {}
        assert not scheduler.is_registered("ghost")

    def test_cancel_removes_registration(self, tuple_lcp):
        scheduler = DegradationScheduler()
        scheduler.register("r1", tuple_lcp, inserted_at=0.0)
        scheduler.cancel("r1")
        assert not scheduler.is_registered("r1")
        # Cancelling twice is harmless.
        scheduler.cancel("r1")


class TestTimedSteps:
    def test_peek_next_due(self, tuple_lcp):
        scheduler = DegradationScheduler()
        scheduler.register("r1", tuple_lcp, inserted_at=10.0)
        assert scheduler.peek_next_due() == 10.0 + HOUR

    def test_nothing_due_before_first_delay(self, tuple_lcp):
        scheduler = DegradationScheduler()
        scheduler.register("r1", tuple_lcp, inserted_at=0.0)
        applied = []
        scheduler.run_due(HOUR - 1, collect_applier(applied))
        assert applied == []

    def test_steps_fire_in_order(self, tuple_lcp):
        scheduler = DegradationScheduler()
        scheduler.register("r1", tuple_lcp, inserted_at=0.0)
        applied = []
        scheduler.run_due(HOUR + DAY, collect_applier(applied))
        assert [(s.from_state, s.to_state) for s in applied] == [(0, 1), (1, 2)]

    def test_catch_up_applies_all_missed_steps(self, tuple_lcp):
        scheduler = DegradationScheduler()
        scheduler.register("r1", tuple_lcp, inserted_at=0.0)
        applied = []
        scheduler.run_due(10 * MONTH, collect_applier(applied))
        assert len(applied) == 4
        assert scheduler.stats.records_completed == 1
        assert not scheduler.is_registered("r1")

    def test_lag_statistics(self, tuple_lcp):
        scheduler = DegradationScheduler()
        scheduler.register("r1", tuple_lcp, inserted_at=0.0)
        applied = []
        scheduler.run_due(HOUR + 30, collect_applier(applied))
        assert scheduler.stats.steps_applied == 1
        assert scheduler.stats.max_lag == pytest.approx(30.0)
        assert scheduler.stats.mean_lag == pytest.approx(30.0)
        assert scheduler.stats.percentile_lag(0.5) == pytest.approx(30.0)

    def test_completion_callback(self, tuple_lcp):
        scheduler = DegradationScheduler()
        scheduler.register("r1", tuple_lcp, inserted_at=0.0)
        completed = []
        scheduler.run_due(10 * MONTH, lambda step: True, on_complete=completed.append)
        assert completed == ["r1"]

    def test_applier_false_drops_without_state_change(self, tuple_lcp):
        scheduler = DegradationScheduler()
        scheduler.register("r1", tuple_lcp, inserted_at=0.0)
        scheduler.run_due(HOUR, lambda step: False)
        assert scheduler.current_state("r1") == {"location": 0}

    def test_defer_requeues_step(self, tuple_lcp):
        scheduler = DegradationScheduler()
        scheduler.register("r1", tuple_lcp, inserted_at=0.0)
        deferred = []

        def refusing(step):
            deferred.append(step)
            scheduler.defer(step, until=step.due + 100)
            return False

        scheduler.run_due(HOUR, refusing)
        assert len(deferred) == 1
        applied = []
        scheduler.run_due(HOUR + 200, collect_applier(applied))
        assert [(s.from_state, s.to_state) for s in applied] == [(0, 1)]

    def test_multiple_records_independent(self, tuple_lcp, two_attr_lcp):
        scheduler = DegradationScheduler()
        scheduler.register("a", tuple_lcp, inserted_at=0.0)
        scheduler.register("b", two_attr_lcp, inserted_at=HOUR)
        applied = []
        scheduler.run_due(2 * HOUR, collect_applier(applied))
        records = {step.record_id for step in applied}
        assert records == {"a", "b"}

    def test_pending_count_skips_stale(self, tuple_lcp):
        scheduler = DegradationScheduler()
        scheduler.register("r1", tuple_lcp, inserted_at=0.0)
        assert scheduler.pending_count() == 1
        scheduler.cancel("r1")
        assert scheduler.pending_count() == 0
        assert scheduler.peek_next_due() is None


class TestCancellation:
    def test_cancel_counts_actual_pending_steps(self, two_attr_lcp):
        scheduler = DegradationScheduler()
        scheduler.register("r1", two_attr_lcp, inserted_at=0.0)
        # Two degradable attributes, each with a pending next step.
        assert scheduler.cancel("r1") == 2
        assert scheduler.stats.steps_cancelled == 2

    def test_cancel_counts_remaining_steps_only(self, tuple_lcp):
        scheduler = DegradationScheduler()
        scheduler.register("r1", tuple_lcp, inserted_at=0.0)
        scheduler.run_due(HOUR + DAY, lambda step: True)   # two of four applied
        assert scheduler.cancel("r1") == 1                 # one next step pending
        assert scheduler.stats.steps_cancelled == 1

    def test_cancel_ignores_never_firing_transitions(self, location_tree):
        lcp = AttributeLCP(location_tree, states=[0, 4],
                           transitions=[float("inf")])
        scheduler = DegradationScheduler()
        scheduler.register("r1", TupleLCP({"location": lcp}), inserted_at=0.0)
        assert scheduler.pending_count() == 0       # never scheduled
        assert scheduler.cancel("r1") == 0          # so nothing to cancel
        assert scheduler.stats.steps_cancelled == 0

    def test_cancel_unknown_record_counts_nothing(self, tuple_lcp):
        scheduler = DegradationScheduler()
        assert scheduler.cancel("ghost") == 0
        assert scheduler.stats.steps_cancelled == 0

    def test_cancel_purges_event_waiters(self, location_tree):
        lcp = AttributeLCP(location_tree, states=[0, 4], transitions=[{"event": "go"}])
        scheduler = DegradationScheduler()
        scheduler.register("r1", TupleLCP({"location": lcp}), inserted_at=0.0)
        scheduler.register("r2", TupleLCP({"location": lcp}), inserted_at=0.0)
        assert scheduler.cancel("r1") == 1
        # The cancelled record no longer leaks a waiter entry; the survivor stays.
        assert scheduler._event_waiters == {"go": [("r2", "location")]}
        scheduler.cancel("r2")
        assert scheduler._event_waiters == {}


class TestPredictComplete:
    def test_final_step_predicted_without_mutation(self, location_tree):
        lcp = AttributeLCP(location_tree, states=[0, 4], transitions=["1 hour"])
        scheduler = DegradationScheduler()
        scheduler.register("r1", TupleLCP({"location": lcp}), inserted_at=0.0)
        steps = scheduler.due_steps(HOUR)
        assert scheduler.predict_complete(steps) == ["r1"]
        # Pure prediction: the registration and its state are untouched.
        assert scheduler.is_registered("r1")
        assert scheduler.current_state("r1") == {"location": 0}

    def test_intermediate_step_predicts_nothing(self, tuple_lcp):
        scheduler = DegradationScheduler()
        scheduler.register("r1", tuple_lcp, inserted_at=0.0)
        steps = scheduler.due_steps(HOUR)           # first of four transitions
        assert scheduler.predict_complete(steps) == []

    def test_all_attributes_must_finalize(self, location_tree, salary_scheme):
        lcp = TupleLCP({
            "location": AttributeLCP(location_tree, states=[0, 4],
                                     transitions=["1 hour"]),
            "salary": AttributeLCP(salary_scheme, states=[0, 4],
                                   transitions=["2 days"]),
        })
        scheduler = DegradationScheduler()
        scheduler.register("r1", lcp, inserted_at=0.0)
        only_location = scheduler.due_steps(HOUR)
        assert [s.attribute for s in only_location] == ["location"]
        assert scheduler.predict_complete(only_location) == []
        both = only_location + scheduler.due_steps(3 * DAY)
        assert scheduler.predict_complete(both) == ["r1"]

    def test_stale_and_unknown_steps_ignored(self, location_tree):
        lcp = AttributeLCP(location_tree, states=[0, 4], transitions=["1 hour"])
        scheduler = DegradationScheduler()
        scheduler.register("r1", TupleLCP({"location": lcp}), inserted_at=0.0)
        stale = DegradationStep(record_id="r1", attribute="location",
                                from_state=1, to_state=1, due=HOUR)
        ghost = DegradationStep(record_id="ghost", attribute="location",
                                from_state=0, to_state=1, due=HOUR)
        assert scheduler.predict_complete([stale, ghost]) == []


class TestOverdueCount:
    def test_overdue_count_tracks_due_steps(self, tuple_lcp):
        scheduler = DegradationScheduler()
        scheduler.register("r1", tuple_lcp, inserted_at=0.0)
        scheduler.register("r2", tuple_lcp, inserted_at=HOUR)
        assert scheduler.overdue_count(HOUR - 1) == 0
        assert scheduler.overdue_count(HOUR) == 1
        assert scheduler.overdue_count(2 * HOUR) == 2

    def test_overdue_count_skips_stale_entries(self, tuple_lcp):
        scheduler = DegradationScheduler()
        scheduler.register("r1", tuple_lcp, inserted_at=0.0)
        scheduler.cancel("r1")
        assert scheduler.overdue_count(10 * MONTH) == 0

    def test_overdue_count_does_not_pop(self, tuple_lcp):
        scheduler = DegradationScheduler()
        scheduler.register("r1", tuple_lcp, inserted_at=0.0)
        assert scheduler.overdue_count(HOUR) == 1
        assert scheduler.overdue_count(HOUR) == 1
        applied = []
        scheduler.run_due(HOUR, collect_applier(applied))
        assert len(applied) == 1


class TestBatchedDrain:
    def test_due_batches_group_by_record_id_prefix(self, tuple_lcp):
        scheduler = DegradationScheduler()
        scheduler.register(("person", 1), tuple_lcp, inserted_at=0.0)
        scheduler.register(("person", 2), tuple_lcp, inserted_at=0.0)
        scheduler.register(("visits", 1), tuple_lcp, inserted_at=0.0)
        batches = scheduler.due_batches(HOUR)
        assert {batch.key: len(batch) for batch in batches} == {"person": 2, "visits": 1}

    def test_due_batches_respects_max_batch(self, tuple_lcp):
        scheduler = DegradationScheduler()
        for key in range(5):
            scheduler.register(("person", key), tuple_lcp, inserted_at=0.0)
        first = scheduler.due_batches(HOUR, max_batch=3)
        assert sum(len(batch) for batch in first) == 3
        rest = scheduler.due_batches(HOUR, max_batch=3)
        assert sum(len(batch) for batch in rest) == 2

    def test_run_due_batched_applies_and_completes(self, tuple_lcp):
        scheduler = DegradationScheduler()
        scheduler.register(("person", 1), tuple_lcp, inserted_at=0.0)
        completed = []
        applied = scheduler.run_due_batched(
            10 * MONTH, lambda key, steps: steps, on_complete=completed.append)
        assert len(applied) == 4                     # full life cycle, catch-up
        assert completed == [("person", 1)]
        assert scheduler.stats.steps_applied == 4
        assert scheduler.stats.records_completed == 1

    def test_run_due_batched_partial_application(self, tuple_lcp):
        scheduler = DegradationScheduler()
        scheduler.register(("person", 1), tuple_lcp, inserted_at=0.0)
        scheduler.register(("person", 2), tuple_lcp, inserted_at=0.0)

        def applier(key, steps):
            kept = [step for step in steps if step.record_id == ("person", 1)]
            for step in steps:
                if step not in kept:
                    scheduler.defer(step, until=2 * HOUR)
            return kept

        applied = scheduler.run_due_batched(HOUR, applier)
        assert [step.record_id for step in applied] == [("person", 1)]
        assert scheduler.current_state(("person", 2)) == {"location": 0}
        # The deferred step fires on the next drain.
        applied = scheduler.run_due_batched(2 * HOUR, lambda key, steps: steps)
        assert ("person", 2) in {step.record_id for step in applied}

    def test_run_due_batched_max_batch_drains_everything(self, tuple_lcp):
        scheduler = DegradationScheduler()
        for key in range(7):
            scheduler.register(("person", key), tuple_lcp, inserted_at=0.0)
        applied = scheduler.run_due_batched(HOUR, lambda key, steps: steps,
                                            max_batch=2)
        assert len(applied) == 7


class TestEventSteps:
    def test_event_transition_waits_for_event(self, location_tree):
        lcp = AttributeLCP(location_tree, states=[0, 1, 4],
                           transitions=["1 h", {"event": "subpoena_denied"}])
        scheduler = DegradationScheduler()
        scheduler.register("r1", TupleLCP({"location": lcp}), inserted_at=0.0)
        applied = []
        scheduler.run_due(10 * MONTH, collect_applier(applied))
        assert [(s.from_state, s.to_state) for s in applied] == [(0, 1)]
        # Now fire the event: the final transition becomes due immediately.
        released = scheduler.fire_event("subpoena_denied", now=10 * MONTH)
        assert len(released) == 1
        scheduler.run_due(10 * MONTH, collect_applier(applied))
        assert [(s.from_state, s.to_state) for s in applied] == [(0, 1), (1, 2)]
        assert scheduler.stats.records_completed == 1

    def test_event_for_cancelled_record_is_ignored(self, location_tree):
        lcp = AttributeLCP(location_tree, states=[0, 4], transitions=[{"event": "go"}])
        scheduler = DegradationScheduler()
        scheduler.register("r1", TupleLCP({"location": lcp}), inserted_at=0.0)
        scheduler.cancel("r1")
        assert scheduler.fire_event("go", now=5.0) == []

    def test_unknown_event_is_noop(self, tuple_lcp):
        scheduler = DegradationScheduler()
        scheduler.register("r1", tuple_lcp, inserted_at=0.0)
        assert scheduler.fire_event("never_registered", now=1.0) == []

    def test_timed_step_after_event_transition_fires(self, location_tree):
        """A timed transition that follows an event counts from the event time."""
        lcp = AttributeLCP(location_tree, states=[0, 1, 4],
                           transitions=[{"event": "released"}, "1 hour"])
        scheduler = DegradationScheduler()
        scheduler.register("r1", TupleLCP({"location": lcp}), inserted_at=0.0)
        applied = []
        # Nothing fires by time alone, however long we wait.
        scheduler.run_due(10 * MONTH, collect_applier(applied))
        assert applied == []
        scheduler.fire_event("released", now=DAY)
        scheduler.run_due(DAY, collect_applier(applied))
        assert [(s.from_state, s.to_state) for s in applied] == [(0, 1)]
        # The follow-up timed step is due one hour after the event fired.
        assert scheduler.peek_next_due() == DAY + HOUR
        scheduler.run_due(DAY + HOUR, collect_applier(applied))
        assert [(s.from_state, s.to_state) for s in applied] == [(0, 1), (1, 2)]
        assert scheduler.stats.records_completed == 1


class TestSnapshotRestore:
    """The durable due-queue: snapshot / restore_from / replay_* round trips."""

    def test_snapshot_fields_round_trip(self, two_attr_lcp):
        scheduler = DegradationScheduler()
        scheduler.register(("person", 1), two_attr_lcp, inserted_at=10.0)
        snapshot = scheduler.snapshot(now=20.0)
        from repro.core.scheduler import SchedulerSnapshot
        rebuilt = SchedulerSnapshot.from_fields(snapshot.to_fields())
        assert rebuilt.taken_at == 20.0
        assert len(rebuilt.registrations) == 1
        snap = rebuilt.registrations[0]
        assert snap.record_id == ("person", 1)
        assert snap.inserted_at == 10.0
        assert snap.current_states == {"location": 0, "salary": 0}
        assert snap.pending["location"] == (10.0 + HOUR, 10.0 + HOUR)

    def test_restore_preserves_queue_and_cadence(self, tuple_lcp):
        scheduler = DegradationScheduler()
        scheduler.register("r1", tuple_lcp, inserted_at=0.0)
        applied = []
        scheduler.run_due(HOUR, collect_applier(applied))
        restored = DegradationScheduler()
        count = restored.restore_from(scheduler.snapshot(),
                                      lambda record_id, policies=None: tuple_lcp)
        assert count == 1
        assert restored.current_state("r1") == {"location": 1}
        assert restored.peek_next_due() == HOUR + DAY
        # The restored queue drains exactly like the original would.
        restored.run_due(HOUR + DAY, collect_applier(applied))
        assert restored.current_state("r1") == {"location": 2}

    def test_restore_resolver_none_drops_registration(self, tuple_lcp):
        scheduler = DegradationScheduler()
        scheduler.register("r1", tuple_lcp, inserted_at=0.0)
        scheduler.register("r2", tuple_lcp, inserted_at=0.0)
        restored = DegradationScheduler()
        count = restored.restore_from(
            scheduler.snapshot(),
            lambda record_id, policies=None: tuple_lcp if record_id == "r2" else None)
        assert count == 1
        assert not restored.is_registered("r1")
        assert restored.is_registered("r2")

    def test_restore_preserves_deferral(self, tuple_lcp):
        scheduler = DegradationScheduler()
        scheduler.register("r1", tuple_lcp, inserted_at=0.0)
        (step,) = scheduler.due_steps(HOUR)
        scheduler.defer(step, until=2 * HOUR)       # e.g. a lock conflict
        restored = DegradationScheduler()
        restored.restore_from(scheduler.snapshot(), lambda record_id, policies=None: tuple_lcp)
        # Not due before the retry time, due at it, with original lag basis.
        assert restored.due_steps(2 * HOUR - 1) == []
        (redone,) = restored.due_steps(2 * HOUR)
        assert redone.due == HOUR

    def test_restore_preserves_event_waiters(self, location_tree):
        lcp = TupleLCP({"location": AttributeLCP(
            location_tree, states=[0, 4], transitions=[{"event": "go"}])})
        scheduler = DegradationScheduler()
        scheduler.register("r1", lcp, inserted_at=0.0)
        restored = DegradationScheduler()
        restored.restore_from(scheduler.snapshot(), lambda record_id, policies=None: lcp)
        released = restored.fire_event("go", now=5.0)
        assert [step.record_id for step in released] == ["r1"]

    def test_replay_applied_matches_live_application(self, tuple_lcp):
        live = DegradationScheduler()
        live.register("r1", tuple_lcp, inserted_at=0.0)
        applied = []
        live.run_due(HOUR, collect_applier(applied))

        replayed = DegradationScheduler()
        replayed.register("r1", tuple_lcp, inserted_at=0.0)
        assert replayed.replay_applied("r1", "location", to_state=1, due=HOUR)
        assert replayed.current_state("r1") == live.current_state("r1")
        assert replayed.peek_next_due() == live.peek_next_due()
        # Replays are stats-neutral: no lag is recorded.
        assert replayed.stats.steps_applied == 0

    def test_replay_applied_rejects_stale_or_unknown(self, tuple_lcp):
        scheduler = DegradationScheduler()
        scheduler.register("r1", tuple_lcp, inserted_at=0.0)
        assert not scheduler.replay_applied("ghost", "location", 1, HOUR)
        assert scheduler.replay_applied("r1", "location", 1, HOUR)
        # Replaying the same step twice is a no-op (exactly-once).
        assert not scheduler.replay_applied("r1", "location", 1, HOUR)

    def test_replay_applied_drops_final_registrations(self, location_tree):
        lcp = TupleLCP({"location": AttributeLCP(
            location_tree, states=[0, 4], transitions=["1 hour"])})
        scheduler = DegradationScheduler()
        scheduler.register("r1", lcp, inserted_at=0.0)
        assert scheduler.replay_applied("r1", "location", 1, HOUR)
        assert not scheduler.is_registered("r1")
        assert scheduler.stats.records_completed == 0   # stats-neutral

    def test_replay_defer_moves_queued_step(self, tuple_lcp):
        scheduler = DegradationScheduler()
        scheduler.register("r1", tuple_lcp, inserted_at=0.0)
        assert scheduler.replay_defer("r1", "location", from_state=0,
                                      due=HOUR, until=3 * HOUR)
        assert scheduler.due_steps(2 * HOUR) == []
        (step,) = scheduler.due_steps(3 * HOUR)
        assert step.due == HOUR

    def test_restore_skips_already_registered_and_final(self, tuple_lcp):
        scheduler = DegradationScheduler()
        scheduler.register("r1", tuple_lcp, inserted_at=0.0)
        snapshot = scheduler.snapshot()
        # Restoring over an existing registration leaves it alone.
        assert scheduler.restore_from(snapshot, lambda record_id, policies=None: tuple_lcp) == 0
        assert scheduler.pending_count() == 1
