"""Tests for the clocks and duration helpers."""

import pytest

from repro.core.clock import (
    DAY,
    HOUR,
    MINUTE,
    MONTH,
    SimulatedClock,
    WallClock,
    duration,
    format_duration,
    make_clock,
    parse_duration,
)
from repro.core.errors import ConfigurationError


class TestDuration:
    def test_basic_units(self):
        assert duration(1, "hour") == 3600.0
        assert duration(2, "days") == 2 * DAY
        assert duration(30, "min") == 30 * MINUTE
        assert duration(1, "month") == MONTH

    def test_unknown_unit_raises(self):
        with pytest.raises(ConfigurationError):
            duration(1, "fortnight")

    def test_parse_with_space(self):
        assert parse_duration("1 hour") == HOUR
        assert parse_duration("2 days") == 2 * DAY

    def test_parse_compact(self):
        assert parse_duration("30min") == 30 * MINUTE
        assert parse_duration("45") == 45.0

    def test_parse_empty_raises(self):
        with pytest.raises(ConfigurationError):
            parse_duration("")

    def test_parse_garbage_raises(self):
        with pytest.raises(ConfigurationError):
            parse_duration("soon")

    def test_format_roundtrip_readable(self):
        assert format_duration(HOUR) == "1 hour"
        assert format_duration(DAY) == "1 day"
        assert format_duration(90) == "1.5 min"
        assert format_duration(5) == "5 s"


class TestSimulatedClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now() == 0.0

    def test_custom_start(self):
        assert SimulatedClock(start=100.0).now() == 100.0

    def test_advance_seconds(self):
        clock = SimulatedClock()
        clock.advance(10)
        assert clock.now() == 10.0

    def test_advance_units(self):
        clock = SimulatedClock()
        clock.advance(hours=1, minutes=30)
        assert clock.now() == pytest.approx(5400.0)

    def test_advance_to(self):
        clock = SimulatedClock()
        clock.advance_to(500.0)
        assert clock.now() == 500.0

    def test_cannot_go_backwards(self):
        clock = SimulatedClock()
        clock.advance(10)
        with pytest.raises(ConfigurationError):
            clock.advance(-1)
        with pytest.raises(ConfigurationError):
            clock.advance_to(5)

    def test_observers_fire_on_advance(self):
        clock = SimulatedClock()
        seen = []
        clock.on_advance(seen.append)
        clock.advance(5)
        clock.advance(hours=1)
        assert seen == [5.0, 5.0 + HOUR]

    def test_remove_observer(self):
        clock = SimulatedClock()
        seen = []
        clock.on_advance(seen.append)
        clock.remove_observer(seen.append)
        clock.advance(5)
        assert seen == []

    def test_sleep_until_advances(self):
        clock = SimulatedClock()
        clock.sleep_until(42.0)
        assert clock.now() == 42.0

    def test_sleep_until_past_is_noop(self):
        clock = SimulatedClock()
        clock.advance(10)
        clock.sleep_until(5.0)
        assert clock.now() == 10.0


class TestMakeClock:
    def test_simulated(self):
        assert isinstance(make_clock("simulated"), SimulatedClock)
        assert isinstance(make_clock("sim"), SimulatedClock)

    def test_wall(self):
        assert isinstance(make_clock("wall"), WallClock)

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            make_clock("quartz")

    def test_wall_clock_monotonic(self):
        clock = WallClock()
        first = clock.now()
        second = clock.now()
        assert second >= first
