"""Broader SQL surface: joins, predicates, aggregates, ordering, EXPLAIN."""

import pytest

from repro import InstantDB
from repro.core.values import NULL

from ..conftest import build_engine

PARIS = "1 Main Street, Paris"
LYON = "2 Station Road, Lyon"
ENSCHEDE = "3 Church Lane, Enschede"


@pytest.fixture
def db():
    db = build_engine()
    db.execute("CREATE TABLE department (id INT PRIMARY KEY, city TEXT, budget INT)")
    db.execute("INSERT INTO department VALUES (1, 'Paris', 100), (2, 'Lyon', 50), "
               "(3, 'Berlin', 75)")
    rows = [
        (1, 1, "alice", PARIS, 2500, "work"),
        (2, 1, "bob", LYON, 3100, "travel"),
        (3, 2, "carol", ENSCHEDE, 1800, "shopping"),
        (4, 3, "dave", PARIS, 2200, "work"),
        (5, 2, "erin", LYON, None, "work"),
    ]
    for row in rows:
        values = ", ".join("NULL" if value is None else
                           (f"'{value}'" if isinstance(value, str) else str(value))
                           for value in row)
        db.execute(f"INSERT INTO person (id, user_id, name, location, salary, activity) "
                   f"VALUES ({values})")
    db.execute("DECLARE PURPOSE city SET ACCURACY LEVEL city FOR person.location")
    return db


class TestPredicates:
    def test_in_list(self, db):
        result = db.execute("SELECT id FROM person WHERE id IN (1, 3, 99)")
        assert sorted(row[0] for row in result.rows) == [1, 3]

    def test_not_in_list(self, db):
        result = db.execute("SELECT id FROM person WHERE id NOT IN (1, 2, 3, 4)")
        assert result.column("id") == [5]

    def test_between(self, db):
        result = db.execute("SELECT id FROM person WHERE salary BETWEEN 2000 AND 3000")
        assert sorted(row[0] for row in result.rows) == [1, 4]

    def test_is_null_and_is_not_null(self, db):
        assert db.execute("SELECT id FROM person WHERE salary IS NULL").column("id") == [5]
        assert len(db.execute("SELECT id FROM person WHERE salary IS NOT NULL")) == 4

    def test_like_case_insensitive(self, db):
        result = db.execute("SELECT id FROM person WHERE location LIKE '%paris%'")
        assert sorted(row[0] for row in result.rows) == [1, 4]

    def test_not_like(self, db):
        result = db.execute("SELECT id FROM person WHERE location NOT LIKE '%Paris%'")
        assert sorted(row[0] for row in result.rows) == [2, 3, 5]

    def test_or_and_parentheses(self, db):
        result = db.execute(
            "SELECT id FROM person WHERE (user_id = 1 OR user_id = 3) AND activity = 'work'")
        assert sorted(row[0] for row in result.rows) == [1, 4]

    def test_comparison_on_missing_value_is_false(self, db):
        result = db.execute("SELECT id FROM person WHERE salary > 0")
        assert 5 not in [row[0] for row in result.rows]

    def test_inequality(self, db):
        result = db.execute("SELECT id FROM person WHERE activity != 'work'")
        assert sorted(row[0] for row in result.rows) == [2, 3]


class TestJoins:
    def test_inner_join_on_stable_columns(self, db):
        result = db.execute(
            "SELECT p.id, d.budget FROM person p JOIN department d ON p.user_id = d.id")
        assert len(result) == 5
        budgets = dict(result.rows)
        assert budgets[1] == 100 and budgets[3] == 50

    def test_join_with_filter_on_joined_table(self, db):
        result = db.execute(
            "SELECT p.name FROM person p JOIN department d ON p.user_id = d.id "
            "WHERE d.budget > 60")
        assert sorted(result.column("name")) == ["alice", "bob", "dave"]

    def test_left_join_keeps_unmatched_rows(self, db):
        db.execute("INSERT INTO person (id, user_id, name, location) "
                   f"VALUES (6, 99, 'zoe', '{PARIS}')")
        result = db.execute(
            "SELECT p.id, d.budget FROM person p LEFT JOIN department d ON p.user_id = d.id")
        budgets = dict(result.rows)
        assert budgets[6] is NULL
        assert len(result) == 6

    def test_join_star_projection(self, db):
        result = db.execute(
            "SELECT * FROM person p JOIN department d ON p.user_id = d.id WHERE p.id = 1")
        row = result.to_dicts()[0]
        assert row["name"] == "alice"
        assert row["d.city"] == "Paris"

    def test_join_respects_purpose_on_base_table(self, db):
        db.advance_time(hours=2)
        result = db.execute(
            "SELECT p.location, d.budget FROM person p JOIN department d ON p.user_id = d.id",
            purpose="city")
        assert set(result.column("location")) <= {"Paris", "Lyon", "Enschede"}


class TestAggregatesAndOrdering:
    def test_count_sum_avg_min_max(self, db):
        result = db.execute(
            "SELECT COUNT(*) AS n, SUM(salary) AS total, AVG(salary) AS mean, "
            "MIN(salary) AS low, MAX(salary) AS high FROM person")
        row = result.to_dicts()[0]
        assert row["n"] == 5
        assert row["total"] == 2500 + 3100 + 1800 + 2200
        assert row["mean"] == pytest.approx((2500 + 3100 + 1800 + 2200) / 4)
        assert (row["low"], row["high"]) == (1800, 3100)

    def test_count_distinct(self, db):
        result = db.execute("SELECT COUNT(DISTINCT activity) AS kinds FROM person")
        assert result.rows[0][0] == 3

    def test_group_by_with_having(self, db):
        result = db.execute(
            "SELECT activity, COUNT(*) AS n FROM person GROUP BY activity HAVING n > 1")
        assert dict(result.rows) == {"work": 3}

    def test_group_by_orders_groups_deterministically(self, db):
        first = db.execute("SELECT activity, COUNT(*) AS n FROM person GROUP BY activity")
        second = db.execute("SELECT activity, COUNT(*) AS n FROM person GROUP BY activity")
        assert first.rows == second.rows

    def test_order_by_multiple_keys(self, db):
        result = db.execute(
            "SELECT activity, id FROM person ORDER BY activity ASC, id DESC")
        assert result.rows[0][0] == "shopping" or result.rows[0][0] <= result.rows[-1][0]
        work_ids = [row[1] for row in result.rows if row[0] == "work"]
        assert work_ids == sorted(work_ids, reverse=True)

    def test_limit_after_order(self, db):
        result = db.execute("SELECT id FROM person ORDER BY id DESC LIMIT 2")
        assert result.column("id") == [5, 4]

    def test_aggregate_ignores_nulls(self, db):
        result = db.execute("SELECT COUNT(salary) AS with_salary FROM person")
        assert result.rows[0][0] == 4

    def test_aggregate_on_empty_selection(self, db):
        result = db.execute("SELECT COUNT(*) AS n, SUM(salary) AS total FROM person "
                            "WHERE id > 100")
        assert result.rows[0][0] == 0
        assert result.rows[0][1] is NULL


class TestMisc:
    def test_explain_non_select(self, db):
        result = db.execute("EXPLAIN DELETE FROM person WHERE id = 1")
        assert "Delete" in result.rows[0][0]
        # The EXPLAIN did not actually delete anything.
        assert db.row_count("person") == 5

    def test_select_alias_output_names(self, db):
        result = db.execute("SELECT name AS who, salary AS pay FROM person WHERE id = 1")
        assert result.columns == ["who", "pay"]

    def test_order_by_unknown_column_rejected(self, db):
        from repro.core.errors import BindingError
        with pytest.raises(BindingError):
            db.execute("SELECT id FROM person ORDER BY ghost")

    def test_unknown_column_in_where_rejected(self, db):
        from repro.core.errors import BindingError
        with pytest.raises(BindingError):
            db.execute("SELECT id FROM person WHERE ghost = 1")

    def test_qualified_names_disambiguate_join_columns(self, db):
        # Both tables have an "id" column; qualified references keep them apart.
        result = db.execute(
            "SELECT p.id, d.id FROM person p JOIN department d ON p.user_id = d.id "
            "WHERE p.id = 3 AND d.id = 2")
        assert result.rows == [(3, 2)]
