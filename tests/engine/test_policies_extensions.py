"""Future-work extensions: per-user (paranoid) policies and event-triggered steps."""

import pytest

from repro import AttributeLCP, InstantDB
from repro.core.domains import build_location_tree
from repro.core.errors import PolicyError

from ..conftest import build_engine

PARIS = "1 Main Street, Paris"
LYON = "2 Station Road, Lyon"


class TestPerUserPolicies:
    @pytest.fixture
    def db(self):
        db = InstantDB()
        location = db.register_domain(build_location_tree())
        db.register_policy(AttributeLCP(location,
                                        transitions=["1 h", "1 d", "1 month", "3 months"],
                                        name="location_lcp"))
        from repro.core.schema import Column, TableSchema
        schema = TableSchema("visits", [
            Column("id", "INT", primary_key=True),
            Column("user_id", "INT"),
            Column("location", "TEXT", degradable=True, domain="location",
                   policy="location_lcp"),
        ])
        db.create_table(schema, selector_column="user_id")
        db.execute("DECLARE PURPOSE city SET ACCURACY LEVEL city FOR visits.location")
        db.execute("DECLARE PURPOSE address SET ACCURACY LEVEL address FOR visits.location")
        return db

    def test_paranoid_user_degrades_faster(self, db):
        location = db.registry.domain("location")
        strict = AttributeLCP(location, transitions=["5 min", "30 min", "1 h", "2 h"],
                              name="paranoid_lcp")
        db.register_user_policy("visits", 42, {"location": strict})
        db.execute(f"INSERT INTO visits VALUES (1, 42, '{PARIS}')")
        db.execute(f"INSERT INTO visits VALUES (2, 7, '{LYON}')")
        db.advance_time(minutes=10)
        # The paranoid user's tuple is already at city level; the default one is
        # still accurate.
        assert db.execute("SELECT id FROM visits", purpose="address").rows == [(2,)]
        assert db.execute("SELECT id, location FROM visits",
                          purpose="city").rows == [(1, "Paris"), (2, "Lyon")]

    def test_paranoid_tuple_disappears_earlier(self, db):
        location = db.registry.domain("location")
        strict = AttributeLCP(location, transitions=["5 min", "30 min", "1 h", "2 h"],
                              name="paranoid_lcp")
        db.register_user_policy("visits", 42, {"location": strict})
        db.execute(f"INSERT INTO visits VALUES (1, 42, '{PARIS}')")
        db.execute(f"INSERT INTO visits VALUES (2, 7, '{LYON}')")
        db.advance_time(hours=5)
        assert db.row_count("visits") == 1
        db.advance_time(days=200)
        assert db.row_count("visits") == 0

    def test_override_requires_selector_column(self):
        db = build_engine()
        location = db.registry.domain("location")
        strict = AttributeLCP(location, transitions=["5 min", "30 min", "1 h", "2 h"],
                              name="paranoid2")
        with pytest.raises(PolicyError):
            db.register_user_policy("person", 42, {"location": strict})

    def test_override_on_table_without_policy_rejected(self):
        db = InstantDB()
        db.execute("CREATE TABLE plain (id INT PRIMARY KEY, note TEXT)")
        with pytest.raises(PolicyError):
            db.register_user_policy("plain", 1, {})


class TestEventTriggeredTransitions:
    @pytest.fixture
    def db(self):
        db = InstantDB()
        location = db.register_domain(build_location_tree())
        # Address degrades to city after 1 hour; the final suppression waits for
        # an explicit "case_closed" event (e.g. end of an investigation).
        db.register_policy(AttributeLCP(
            location, states=[0, 1, 4],
            transitions=["1 h", {"event": "case_closed"}],
            name="event_lcp"))
        db.execute("CREATE TABLE sightings (id INT PRIMARY KEY, "
                   "location TEXT DEGRADABLE DOMAIN location POLICY event_lcp)")
        db.execute("DECLARE PURPOSE city SET ACCURACY LEVEL city FOR sightings.location")
        return db

    def test_event_releases_final_transition(self, db):
        db.execute(f"INSERT INTO sightings VALUES (1, '{PARIS}')")
        db.advance_time(days=30)
        # Timed step ran, event step still pending.
        assert db.execute("SELECT location FROM sightings", purpose="city").rows == [("Paris",)]
        assert db.row_count("sightings") == 1
        db.fire_event("case_closed")
        assert db.row_count("sightings") == 0

    def test_event_before_timed_step_does_not_skip_levels(self, db):
        db.execute(f"INSERT INTO sightings VALUES (1, '{PARIS}')")
        # Fire the event while the tuple is still in its first (timed) state:
        # nothing is waiting on it yet, so nothing happens.
        db.fire_event("case_closed")
        assert db.row_count("sightings") == 1
        assert db.execute("SELECT location FROM sightings").rows == [(PARIS,)]

    def test_unknown_event_is_noop(self, db):
        db.execute(f"INSERT INTO sightings VALUES (1, '{PARIS}')")
        assert db.fire_event("unrelated_event") == []
        assert db.row_count("sightings") == 1
