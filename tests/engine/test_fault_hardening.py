"""Engine hardening under injected I/O faults.

A :class:`~repro.faults.FaultPlan` arms the engine's durability seams
(``wal.flush``, ``wal.rewrite``, ``pager.sync``, ``clock.advance``) and the
engine must honour the degraded-mode contract: a typed
:class:`DurabilityError`, a clean transaction abort, sticky read-only mode
that keeps serving reads, and a one-call :meth:`InstantDB.recover` that
resumes writes with no lost committed data and no leaked loser data.
"""

import pytest

from repro import AttributeLCP
from repro.core.domains import build_location_tree
from repro.core.errors import (
    DurabilityError,
    ReadOnlyModeError,
)
from repro.engine.database import InstantDB
from repro.faults import FaultPlan
from repro.workloads import LocationTraceGenerator, person_table_sql


def build_db(tmp_path, plan=None):
    db = InstantDB(data_dir=str(tmp_path / "db"), fault_plan=plan)
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, val TEXT)")
    db.execute("INSERT INTO t (id, val) VALUES (1, 'kept')")
    return db


class TestCommitFlushFault:
    def test_failed_commit_degrades_and_aborts_cleanly(self, tmp_path):
        plan = FaultPlan(seed=1)
        db = build_db(tmp_path, plan)
        try:
            plan.fail_once("wal.flush", "enospc")
            with pytest.raises(DurabilityError):
                db.execute("INSERT INTO t (id, val) VALUES (2, 'lost')")
            assert db.read_only
            assert "no space left" in db.read_only_reason
            # reads still work and the aborted insert is invisible
            rows = db.execute("SELECT id FROM t").rows
            assert [row[0] for row in rows] == [1]
            # writes are refused with the sticky typed error
            with pytest.raises(ReadOnlyModeError):
                db.execute("INSERT INTO t (id, val) VALUES (3, 'refused')")
        finally:
            db.close()

    def test_recover_clears_read_only_and_resumes_writes(self, tmp_path):
        plan = FaultPlan(seed=1)
        db = build_db(tmp_path, plan)
        try:
            plan.fail_once("wal.flush", "enospc")
            with pytest.raises(DurabilityError):
                db.execute("INSERT INTO t (id, val) VALUES (2, 'lost')")
            assert db.read_only
            db.recover(drain=True)
            assert not db.read_only
            db.execute("INSERT INTO t (id, val) VALUES (3, 'resumed')")
            rows = db.execute("SELECT id FROM t").rows
            assert sorted(row[0] for row in rows) == [1, 3]
        finally:
            db.close()

    def test_committed_data_survives_cold_reopen_after_fault(self, tmp_path):
        plan = FaultPlan(seed=1)
        db = build_db(tmp_path, plan)
        plan.fail_once("wal.flush", "torn_write")
        with pytest.raises(DurabilityError):
            db.execute("INSERT INTO t (id, val) VALUES (2, 'lost')")
        db.daemon.pause()  # abandon: no close(), like a crash

        reopened = InstantDB(data_dir=str(tmp_path / "db"))
        try:
            reopened.recover(drain=True)
            # one-call reopen: the catalog came back from the WAL, no DDL
            assert reopened.catalog.tables()
            rows = reopened.execute("SELECT id, val FROM t").rows
            assert [(row[0], row[1]) for row in rows] == [(1, "kept")]
        finally:
            reopened.close()


class TestUndoFault:
    def test_failed_undo_degrades_but_releases_locks(self, tmp_path):
        plan = FaultPlan(seed=1)
        db = build_db(tmp_path, plan)
        try:
            txn = db.begin()
            db.execute("INSERT INTO t (id, val) VALUES (2, 'doomed')",
                       txn=txn)
            # the rollback's undo (WAL scrub of the logged insert) fails
            plan.fail_once("wal.rewrite", "enospc")
            db.rollback(txn)
            assert db.read_only
            assert "undo failure" in db.read_only_reason
            assert db.transactions.stats.undo_failures == 1
            # the abort still completed: no wedged locks, no active txn
            assert not db.transactions.is_active(txn.txn_id)
            db.recover(drain=True)
            # the table is writable again — the loser's lock was released
            db.execute("INSERT INTO t (id, val) VALUES (3, 'after')")
            rows = db.execute("SELECT id FROM t").rows
            assert sorted(row[0] for row in rows) == [1, 3]
        finally:
            db.close()


class TestPagerFault:
    def test_checkpoint_sync_fault_degrades_then_recovers(self, tmp_path):
        plan = FaultPlan(seed=1)
        db = build_db(tmp_path, plan)
        try:
            plan.fail_once("pager.sync", "fsync")
            with pytest.raises(DurabilityError):
                db.checkpoint()
            assert db.read_only
            db.recover(drain=True)
            assert not db.read_only
            db.checkpoint()
        finally:
            db.close()


class TestDaemonWaveFault:
    def test_faulted_wave_defers_and_retries_with_backoff(self, tmp_path):
        plan = FaultPlan(seed=1)
        db = InstantDB(data_dir=str(tmp_path / "db"), fault_plan=plan)
        try:
            location = db.register_domain(build_location_tree())
            db.register_policy(AttributeLCP(
                location, transitions=["1 hour", "1 day", "1 month",
                                       "3 months"],
                name="location_lcp"))
            db.execute(person_table_sql(policy_name="location_lcp",
                                        salary_policy=None))
            generator = LocationTraceGenerator(num_users=4, seed=5)
            for index, event in enumerate(generator.events(10), start=1):
                row = event.as_row()
                row["id"] = index
                db.insert_row("person", row)
            # every wave write for a while hits the failing device
            plan.fail_with_probability("wal.flush", "enospc", 1.0,
                                       max_fires=3)
            db.advance_time(3700)
            assert db.daemon.stats.steps_deferred_by_fault > 0
            assert not db.read_only  # background waves never degrade the engine
            # backoff drains once the device heals: each advance retries the
            # deferred steps and (device healthy again) they eventually land
            for _ in range(10):
                db.advance_time(86400.0)
            assert db.stats.degradation_steps_applied > 0
        finally:
            db.close()


class TestClockFault:
    def test_clock_skip_overshoots_monotonically(self, tmp_path):
        plan = FaultPlan(seed=1)
        db = InstantDB(fault_plan=plan)
        try:
            before = db.clock.now()
            plan.fail_once("clock.advance", "skip")
            db.advance_time(10)
            after = db.clock.now()
            # a skip may jump further than asked, never backwards or short
            assert after >= before + 10
        finally:
            db.close()
