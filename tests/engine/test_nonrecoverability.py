"""Forensic non-recoverability: after a degradation step, the accurate value is
gone from the data store, the indexes and the log (paper §III challenge 2)."""

import pytest

from repro.privacy.forensic import scan_engine

from ..conftest import build_engine

PARIS = "1 Main Street, Paris"
LYON = "2 Station Road, Lyon"


def populate(db):
    db.execute(f"INSERT INTO person (id, user_id, name, location, salary, activity) "
               f"VALUES (1, 1, 'alice', '{PARIS}', 2500, 'work')")
    db.execute(f"INSERT INTO person (id, user_id, name, location, salary, activity) "
               f"VALUES (2, 2, 'bob', '{LYON}', 3100, 'travel')")


@pytest.mark.parametrize("strategy", ["rewrite", "crypto"])
class TestDegradationErasesAccurateValues:
    def test_accurate_location_present_before_degradation(self, strategy):
        db = build_engine(strategy=strategy)
        db.execute("CREATE INDEX idx_location ON person (location) USING gt")
        populate(db)
        report = scan_engine(db, [PARIS], table="person")
        if strategy == "rewrite":
            assert not report.clean        # plaintext legitimately present while accurate
        else:
            # Crypto strategy never stores plaintext in heap/WAL; only the index
            # keys hold it while the value is still accurate.
            channels = {finding.channel for finding in report.findings}
            assert channels <= {"index:idx_location"}

    def test_city_step_removes_street_address_everywhere(self, strategy):
        db = build_engine(strategy=strategy)
        db.execute("CREATE INDEX idx_location ON person (location) USING gt")
        populate(db)
        db.advance_time(hours=2)
        report = scan_engine(db, [PARIS, LYON], table="person")
        assert report.clean, report.summary()

    def test_full_lifecycle_erases_everything_sensitive(self, strategy):
        db = build_engine(strategy=strategy)
        db.execute("CREATE INDEX idx_location ON person (location) USING gt")
        populate(db)
        db.advance_time(days=800)
        report = scan_engine(db, [PARIS, LYON, "Paris", "Lyon", "Ile-de-France",
                                  "France", 2500, 3100])
        assert report.clean, report.summary()

    def test_explicit_delete_is_also_unrecoverable(self, strategy):
        db = build_engine(strategy=strategy)
        populate(db)
        db.execute("DELETE FROM person WHERE id = 1")
        report = scan_engine(db, [PARIS, "alice"], table="person")
        assert report.clean, report.summary()

    def test_intermediate_levels_cleaned_as_they_expire(self, strategy):
        db = build_engine(strategy=strategy)
        populate(db)
        db.advance_time(days=2)      # city -> region
        report = scan_engine(db, [PARIS, LYON, "Paris", "Lyon"], table="person")
        assert report.clean, report.summary()
        if strategy == "rewrite":
            # Regions are the current accuracy, so their plaintext legitimately
            # remains in the data pages (the crypto strategy stores even the
            # current value encrypted, so nothing is expected there).
            region_report = scan_engine(db, ["Ile-de-France"], table="person")
            assert not region_report.clean

    def test_stable_attributes_survive(self, strategy):
        db = build_engine(strategy=strategy)
        populate(db)
        db.advance_time(days=2)
        report = scan_engine(db, ["alice", "bob"], table="person")
        assert not report.clean


class TestBaselineComparison:
    def test_without_secure_reclamation_ghosts_survive(self):
        """Control experiment: a non-secure page keeps deleted plaintext around,
        which is exactly the forensic threat the paper cites."""
        from repro.storage.page import SlottedPage
        page = SlottedPage(secure=False)
        slot = page.insert(PARIS.encode())
        page.delete(slot)
        assert PARIS.encode() in page.raw()

    def test_wal_without_scrubbing_keeps_images(self):
        from repro.storage.wal import LogRecordType, WriteAheadLog
        wal = WriteAheadLog()
        wal.append(LogRecordType.INSERT, 1, table="person", row_key=1,
                   after=PARIS.encode())
        assert PARIS.encode() in wal.raw_image()
