"""Index maintenance under inserts, degradation, deletes and queries."""

import pytest

from ..conftest import build_engine

PARIS = "1 Main Street, Paris"
LYON = "2 Station Road, Lyon"


@pytest.fixture
def db():
    db = build_engine()
    db.execute("CREATE INDEX idx_user ON person (user_id) USING hash")
    db.execute("CREATE INDEX idx_id ON person (id) USING btree")
    db.execute("CREATE INDEX idx_salary ON person (salary) USING btree")
    db.execute("CREATE INDEX idx_activity ON person (activity) USING bitmap")
    db.execute("CREATE INDEX idx_location ON person (location) USING gt")
    for i, (location, salary, activity) in enumerate(
            [(PARIS, 2500, "work"), (LYON, 3100, "travel"), (PARIS, 1800, "work")], start=1):
        db.execute(
            f"INSERT INTO person (id, user_id, name, location, salary, activity) "
            f"VALUES ({i}, {i * 10}, 'user{i}', '{location}', {salary}, '{activity}')")
    db.execute("DECLARE PURPOSE city SET ACCURACY LEVEL city FOR person.location")
    db.execute("DECLARE PURPOSE country SET ACCURACY LEVEL country FOR person.location")
    return db


def index_of(db, name):
    return db.catalog.table("person").indexes[name].index


class TestIndexMaintenance:
    def test_inserts_populate_all_indexes(self, db):
        assert len(index_of(db, "idx_user")) == 3
        assert len(index_of(db, "idx_salary")) == 3
        assert len(index_of(db, "idx_activity")) == 3
        assert len(index_of(db, "idx_location")) == 3

    def test_create_index_backfills_existing_rows(self, db):
        db.execute("CREATE INDEX idx_name ON person (name) USING btree")
        assert len(index_of(db, "idx_name")) == 3

    def test_gt_index_created_on_stable_column_rejected(self, db):
        from repro.core.errors import CatalogError
        with pytest.raises(CatalogError):
            db.execute("CREATE INDEX idx_bad ON person (name) USING gt")

    def test_unknown_index_method_rejected(self, db):
        from repro.core.errors import CatalogError
        with pytest.raises(CatalogError):
            db.execute("CREATE INDEX idx_bad ON person (name) USING rtree")

    def test_duplicate_index_name_rejected(self, db):
        from repro.core.errors import CatalogError
        with pytest.raises(CatalogError):
            db.execute("CREATE INDEX idx_user ON person (user_id)")

    def test_degradation_moves_gt_postings(self, db):
        gt = index_of(db, "idx_location")
        assert gt.level_histogram()[0] == 3
        db.advance_time(hours=2)
        histogram = gt.level_histogram()
        assert histogram[0] == 0 and histogram[1] == 3
        assert gt.search_at("Paris", 1) != []

    def test_degraded_accurate_keys_leave_index_image(self, db):
        gt = index_of(db, "idx_location")
        db.advance_time(hours=2)
        assert PARIS.encode() not in gt.raw_image()

    def test_delete_removes_index_entries(self, db):
        db.execute("DELETE FROM person WHERE user_id = 10")
        assert index_of(db, "idx_user").search(10) == []
        assert len(index_of(db, "idx_location")) == 2

    def test_policy_removal_cleans_indexes(self, db):
        db.advance_time(days=800)
        assert db.row_count("person") == 0
        assert len(index_of(db, "idx_user")) == 0
        assert len(index_of(db, "idx_location")) == 0
        assert len(index_of(db, "idx_salary")) == 0

    def test_stable_update_refreshes_index(self, db):
        db.execute("UPDATE person SET activity = 'retired' WHERE user_id = 10")
        bitmap = index_of(db, "idx_activity")
        assert bitmap.search("retired") != []
        assert len(bitmap.search("work")) == 1


class TestIndexedQueries:
    def test_hash_index_point_lookup_used(self, db):
        explain = db.execute("EXPLAIN SELECT * FROM person WHERE user_id = 10")
        assert "IndexScan" in explain.rows[0][0]
        result = db.execute("SELECT id FROM person WHERE user_id = 10")
        assert result.rows == [(1,)]

    def test_btree_range_scan_used(self, db):
        explain = db.execute(
            "EXPLAIN SELECT * FROM person WHERE id >= 1 AND id <= 2")
        assert "IndexRangeScan" in explain.rows[0][0]
        result = db.execute("SELECT id FROM person WHERE id >= 1 AND id <= 2")
        assert sorted(row[0] for row in result.rows) == [1, 2]

    def test_range_on_degradable_salary_falls_back_to_seqscan(self, db):
        """Range predicates on degradable columns cannot use the B+-tree (the
        stored representation changes level over time), so the planner keeps a
        sequential scan and the answer is still correct while accurate."""
        explain = db.execute(
            "EXPLAIN SELECT * FROM person WHERE salary >= 2000 AND salary <= 3200")
        assert "SeqScan" in explain.rows[0][0]
        result = db.execute("SELECT id FROM person WHERE salary >= 2000 AND salary <= 3200")
        assert sorted(row[0] for row in result.rows) == [1, 2]

    def test_gt_index_point_lookup_at_city_level(self, db):
        db.advance_time(hours=2)
        explain = db.execute("EXPLAIN SELECT * FROM person WHERE location = 'Paris'",
                             purpose="city")
        assert "GTIndexScan" in explain.rows[0][0]
        result = db.execute("SELECT id FROM person WHERE location = 'Paris'",
                            purpose="city")
        assert sorted(row[0] for row in result.rows) == [1, 3]

    def test_gt_index_at_country_level_folds_finer_levels(self, db):
        db.advance_time(hours=2)   # stored at city level
        result = db.execute("SELECT id FROM person WHERE location = 'France'",
                            purpose="country")
        assert sorted(row[0] for row in result.rows) == [1, 2, 3]

    def test_index_results_match_seqscan(self, db):
        db.advance_time(hours=2)
        indexed = db.execute("SELECT id FROM person WHERE location = 'Paris'",
                             purpose="city").rows
        # Force a sequential plan by querying through a fresh non-indexed predicate.
        seq = db.execute("SELECT id FROM person WHERE location = 'Paris' AND id > 0",
                         purpose="city").rows
        assert sorted(indexed) == sorted(seq)
