"""End-to-end degradation semantics: the paper's §II model through the engine."""

import pytest

from repro.core.values import SUPPRESSED

from ..conftest import build_engine

PARIS = "1 Main Street, Paris"
LYON = "2 Station Road, Lyon"
ENSCHEDE = "3 Church Lane, Enschede"


@pytest.fixture
def db():
    db = build_engine()
    db.execute(f"INSERT INTO person (id, user_id, name, location, salary, activity) "
               f"VALUES (1, 1, 'alice', '{PARIS}', 2500, 'work')")
    db.execute(f"INSERT INTO person (id, user_id, name, location, salary, activity) "
               f"VALUES (2, 2, 'bob', '{LYON}', 3100, 'travel')")
    db.execute(f"INSERT INTO person (id, user_id, name, location, salary, activity) "
               f"VALUES (3, 3, 'carol', '{ENSCHEDE}', 1800, 'shopping')")
    for level in ("address", "city", "region", "country"):
        db.execute(f"DECLARE PURPOSE {level} SET ACCURACY LEVEL {level} FOR person.location")
    return db


class TestTimedDegradationSteps:
    def test_accurate_before_first_delay(self, db):
        db.advance_time(minutes=59)
        assert db.execute("SELECT location FROM person WHERE id = 1").rows == [(PARIS,)]

    def test_city_after_one_hour(self, db):
        db.advance_time(hours=1, seconds=1)
        assert db.execute("SELECT location FROM person WHERE id = 1",
                          purpose="city").rows == [("Paris",)]
        assert db.level_histogram("person", "location") == {1: 3}

    def test_region_after_one_day(self, db):
        db.advance_time(days=1, hours=2)
        assert db.execute("SELECT location FROM person WHERE id = 3",
                          purpose="region").rows == [("Overijssel",)]

    def test_country_after_one_month(self, db):
        db.advance_time(days=32)
        rows = db.execute("SELECT id, location FROM person", purpose="country").rows
        assert dict(rows) == {1: "France", 2: "France", 3: "Netherlands"}

    def test_salary_degrades_on_its_own_policy(self, db):
        db.advance_time(days=3)
        db.execute("DECLARE PURPOSE pay SET ACCURACY LEVEL range1000 FOR person.salary")
        rows = db.execute("SELECT id, salary FROM person", purpose="pay").rows
        assert dict(rows) == {1: "2000-3000", 2: "3000-4000", 3: "1000-2000"}

    def test_paper_example_query(self, db):
        """The exact query of the paper, run under its STAT purpose."""
        db.advance_time(days=40)
        db.execute("DECLARE PURPOSE stat SET ACCURACY LEVEL country FOR person.location, "
                   "range1000 FOR person.salary")
        result = db.execute(
            "SELECT * FROM person WHERE location LIKE '%FRANCE%' AND salary = '2000-3000'",
            purpose="stat")
        assert len(result) == 1
        row = result.to_dicts()[0]
        assert row["id"] == 1 and row["location"] == "France"

    def test_full_lifecycle_removes_tuples(self, db):
        db.advance_time(days=600)
        assert db.row_count("person") == 0
        assert db.stats.rows_removed_by_policy == 3

    def test_degradation_applies_uniformly_to_all_tuples(self, db):
        db.advance_time(hours=2)
        histogram = db.level_histogram("person", "location")
        assert histogram == {1: 3}

    def test_late_inserts_follow_their_own_clock(self, db):
        db.advance_time(hours=2)   # first three rows now at city level
        db.execute(f"INSERT INTO person (id, user_id, name, location, salary, activity) "
                   f"VALUES (4, 4, 'dave', '{PARIS}', 2000, 'work')")
        db.advance_time(minutes=30)
        histogram = db.level_histogram("person", "location")
        assert histogram == {0: 1, 1: 3}
        # The new row is still accurate, the old ones are not.
        assert db.execute("SELECT id FROM person", purpose="address").rows == [(4,)]


class TestQueryAccuracySemantics:
    def test_default_purpose_sees_only_accurate_tuples(self, db):
        db.advance_time(hours=2)
        db.execute(f"INSERT INTO person (id, user_id, name, location, salary, activity) "
                   f"VALUES (4, 4, 'dave', '{PARIS}', 2000, 'work')")
        # With no purpose (level 0 demanded), degraded tuples are not computable.
        assert db.execute("SELECT id FROM person").rows == [(4,)]

    def test_demanded_coarser_level_degrades_before_predicate(self, db):
        # Even while data is still accurate, a country-level purpose compares
        # against country values (f_k applied before P).
        result = db.execute("SELECT id FROM person WHERE location = 'France'",
                            purpose="country")
        assert [row[0] for row in result.rows] == [1, 2]

    def test_predicate_on_finer_level_than_stored_returns_nothing(self, db):
        db.advance_time(days=2)  # stored at region level now
        result = db.execute(f"SELECT id FROM person WHERE location = '{PARIS}'")
        assert result.rows == []

    def test_projection_shows_demanded_level_not_stored_level(self, db):
        # Stored accurate, queried at region level.
        result = db.execute("SELECT location FROM person WHERE id = 1", purpose="region")
        assert result.rows == [("Ile-de-France",)]

    def test_count_by_country_statistics_survive_degradation(self, db):
        db.advance_time(days=40)
        result = db.execute(
            "SELECT location, COUNT(*) AS n FROM person GROUP BY location ORDER BY location",
            purpose="country")
        assert dict(result.rows) == {"France": 2, "Netherlands": 1}

    def test_aggregate_excludes_non_computable_tuples(self, db):
        db.advance_time(hours=2)
        db.execute(f"INSERT INTO person (id, user_id, name, location, salary, activity) "
                   f"VALUES (4, 4, 'dave', '{PARIS}', 2000, 'work')")
        result = db.execute("SELECT COUNT(*) AS n FROM person", purpose="address")
        assert result.rows[0][0] == 1

    def test_stable_attributes_always_visible_at_any_purpose(self, db):
        db.advance_time(days=40)
        result = db.execute("SELECT id, name FROM person", purpose="country")
        assert set(result.column("name")) == {"alice", "bob", "carol"}


class TestUpdateSemantics:
    def test_stable_update_allowed_after_degradation(self, db):
        db.advance_time(days=2)
        count = db.execute("UPDATE person SET name = 'anonymous' WHERE user_id = 1",
                           purpose="region")
        assert count == 1
        assert db.execute("SELECT name FROM person WHERE user_id = 1",
                          purpose="region").rows == [("anonymous",)]

    def test_delete_uses_view_semantics(self, db):
        db.advance_time(days=40)
        # Delete every tuple whose degraded location is France.
        deleted = db.execute("DELETE FROM person WHERE location = 'France'",
                             purpose="country")
        assert deleted == 2
        assert db.row_count("person") == 1

    def test_delete_cancels_future_degradation(self, db):
        db.execute("DELETE FROM person WHERE id = 1")
        assert db.scheduler.registered_count() == 2
        db.advance_time(days=600)
        assert db.stats.rows_removed_by_policy == 2


class TestSuppressionAndRemoval:
    def test_partial_policy_keeps_suppressed_tuple(self):
        """A policy whose final state is 'country' (not removal) keeps tuples forever."""
        from repro import AttributeLCP, InstantDB
        from repro.core.domains import build_location_tree
        db = InstantDB()
        location = db.register_domain(build_location_tree())
        db.register_policy(AttributeLCP(location, states=[0, 1, 3],
                                        transitions=["1 h", "1 d"],
                                        name="partial_lcp"))
        db.execute("CREATE TABLE visits (id INT PRIMARY KEY, "
                   "location TEXT DEGRADABLE DOMAIN location POLICY partial_lcp)")
        db.execute(f"INSERT INTO visits VALUES (1, '{PARIS}')")
        db.advance_time(days=400)
        db.execute("DECLARE PURPOSE c SET ACCURACY LEVEL country FOR visits.location")
        assert db.execute("SELECT location FROM visits", purpose="c").rows == [("France",)]
        assert db.row_count("visits") == 1

    def test_suppressed_values_visible_at_root_level(self, db):
        # Degrade location fully but before tuple removal (salary still alive).
        db.advance_time(days=130)
        db.execute("DECLARE PURPOSE root SET ACCURACY LEVEL suppressed FOR person.location")
        rows = db.execute("SELECT location FROM person", purpose="root").rows
        assert all(value is SUPPRESSED for (value,) in rows)
