"""The batch degradation pipeline: grouped drains, coalesced I/O, parity with
the per-step baseline, and the retry / event paths around it."""

import pytest

from repro import AttributeLCP, InstantDB
from repro.core.domains import build_location_tree
from repro.privacy.forensic import scan_engine
from repro.storage.wal import LogRecordType

from ..conftest import build_engine

PARIS = "1 Main Street, Paris"
LYON = "2 Station Road, Lyon"
ENSCHEDE = "3 Church Lane, Enschede"
ADDRESSES = [PARIS, LYON, ENSCHEDE]


def build_trace_engine(batch: bool = True, max_batch=None,
                       strategy: str = "rewrite",
                       transitions=None) -> InstantDB:
    """Single-table engine with a location-only policy (fully controllable waves)."""
    db = InstantDB(strategy=strategy, batch_degradation=batch,
                   degradation_max_batch=max_batch)
    location = db.register_domain(build_location_tree())
    db.register_policy(AttributeLCP(
        location, transitions=transitions or ["1 hour", "1 day", "1 month", "3 months"],
        name="location_lcp"))
    db.execute("CREATE TABLE trace (id INT PRIMARY KEY, location TEXT "
               "DEGRADABLE DOMAIN location POLICY location_lcp)")
    return db


def insert_wave(db: InstantDB, count: int) -> None:
    db.executemany("INSERT INTO trace VALUES (?, ?)",
                   [(i, ADDRESSES[i % len(ADDRESSES)]) for i in range(1, count + 1)])


class TestBatchedWave:
    def test_one_wal_flush_per_batch(self):
        db = build_trace_engine()
        insert_wave(db, 25)
        flushed = db.wal.stats.flushed
        db.advance_time(hours=2)          # 25 steps due in one wave
        assert db.stats.degradation_steps_applied == 25
        assert db.wal.stats.flushed - flushed == 1
        assert db.level_histogram("trace", "location") == {1: 25}

    def test_dirty_pages_flushed_at_most_once_per_batch(self):
        db = build_trace_engine()
        insert_wave(db, 60)
        flushes = db.buffer_pool.stats.flushes
        db.advance_time(hours=2)
        heap_pages = db.table_store("trace").heap.page_count
        assert db.buffer_pool.stats.flushes - flushes <= heap_pages

    def test_single_scrub_pass_per_batch(self):
        db = build_trace_engine()
        insert_wave(db, 20)
        rewrites = db.wal.stats.scrub_rewrites
        db.advance_time(hours=2)
        assert db.wal.stats.scrub_rewrites - rewrites == 1

    def test_one_system_txn_per_batch(self):
        db = build_trace_engine()
        insert_wave(db, 30)
        system = db.transactions.stats.system_begun
        db.advance_time(hours=2)
        assert db.transactions.stats.system_begun - system == 1

    def test_max_batch_chunks_the_drain(self):
        db = build_trace_engine(max_batch=10)
        insert_wave(db, 35)
        flushed = db.wal.stats.flushed
        db.advance_time(hours=2)
        assert db.stats.degradation_steps_applied == 35
        assert db.wal.stats.flushed - flushed == 4     # ceil(35 / 10) chunks
        assert db.daemon.backlog() == 0

    @pytest.mark.parametrize("strategy", ["rewrite", "crypto"])
    def test_batch_wave_not_forensically_recoverable(self, strategy):
        db = build_trace_engine(strategy=strategy)
        insert_wave(db, 12)
        db.advance_time(hours=2)
        report = scan_engine(db, ADDRESSES, table="trace")
        assert report.clean, report.summary()

    @pytest.mark.parametrize("strategy", ["rewrite", "crypto"])
    def test_batch_matches_per_step_visible_state(self, strategy):
        batched = build_trace_engine(batch=True, strategy=strategy)
        per_step = build_trace_engine(batch=False, strategy=strategy)
        for db in (batched, per_step):
            insert_wave(db, 15)
            db.advance_time(days=2)       # two steps: city, then region
            db.execute("DECLARE PURPOSE r SET ACCURACY LEVEL region FOR trace.location")
        rows_batched = batched.execute("SELECT id, location FROM trace", purpose="r").rows
        rows_per_step = per_step.execute("SELECT id, location FROM trace", purpose="r").rows
        assert rows_batched == rows_per_step
        assert batched.level_histogram("trace", "location") == \
            per_step.level_histogram("trace", "location") == {2: 15}

    def test_gt_index_maintained_in_bulk(self):
        db = build_trace_engine()
        db.create_index("idx_location", "trace", "location", method="gt")
        insert_wave(db, 21)
        db.advance_time(hours=2)
        index = db.catalog.table("trace").indexes["idx_location"].index
        index.verify()
        assert index.level_histogram()[1] == 21
        db.execute("DECLARE PURPOSE c SET ACCURACY LEVEL city FOR trace.location")
        result = db.execute("SELECT id FROM trace WHERE location = 'Paris'", purpose="c")
        assert len(result) == 7           # every third row is the Paris address

    def test_mass_completion_removes_in_bulk(self):
        db = build_trace_engine()
        insert_wave(db, 18)
        db.advance_time(days=600)         # full life cycle in one catch-up drain
        assert db.row_count("trace") == 0
        assert db.stats.rows_removed_by_policy == 18
        report = scan_engine(db, ADDRESSES + ["Paris", "Lyon", "France"])
        assert report.clean, report.summary()

    def test_final_removals_share_the_batch_transaction(self):
        # A single-transition policy: the wave's only step is also the final
        # one, so the removals must fold into the same system transaction as
        # the DEGRADE records — one txn, one commit flush for the whole wave.
        db = InstantDB(batch_degradation=True)
        location = db.register_domain(build_location_tree())
        db.register_policy(AttributeLCP(location, states=[0, 4],
                                        transitions=["1 hour"],
                                        name="location_lcp"))
        db.execute("CREATE TABLE trace (id INT PRIMARY KEY, location TEXT "
                   "DEGRADABLE DOMAIN location POLICY location_lcp)")
        insert_wave(db, 10)
        system = db.transactions.stats.system_begun
        flushed = db.wal.stats.flushed
        db.advance_time(hours=2)
        assert db.row_count("trace") == 0
        assert db.stats.rows_removed_by_policy == 10
        assert db.transactions.stats.system_begun - system == 1
        assert db.wal.stats.flushed - flushed == 1
        removes = [record for record in db.wal.records()
                   if record.record_type is LogRecordType.REMOVE]
        assert len(removes) == 10
        assert {record.txn_id for record in removes} != {0}
        assert len({record.txn_id for record in removes}) == 1

    def test_partial_policy_batch_keeps_degraded_rows(self):
        # remove_on_final only fires for fully-suppressing life cycles; a
        # partial policy's final batch must leave the degraded tuples behind.
        db = InstantDB(batch_degradation=True)
        location = db.register_domain(build_location_tree())
        db.register_policy(AttributeLCP(location, states=[0, 2],
                                        transitions=["1 hour"],
                                        name="location_lcp"))
        db.execute("CREATE TABLE trace (id INT PRIMARY KEY, location TEXT "
                   "DEGRADABLE DOMAIN location POLICY location_lcp)")
        insert_wave(db, 6)
        db.advance_time(hours=2)
        assert db.row_count("trace") == 6
        assert db.stats.rows_removed_by_policy == 0


class TestLockConflictDeferral:
    @pytest.mark.parametrize("batch", [True, False])
    def test_conflicting_batch_defers_and_retries(self, batch):
        db = build_trace_engine(batch=batch)
        insert_wave(db, 8)
        reader = db.begin()
        db.execute("SELECT * FROM trace", txn=reader)
        db.advance_time(hours=2)
        # The reader's shared lock defers the whole wave; nothing is lost.
        assert db.stats.degradation_conflicts >= 1
        assert db.stats.degradation_steps_applied == 0
        assert db.daemon.backlog() == 0   # deferred steps are re-queued, not overdue
        db.commit(reader)
        db.advance_time(seconds=2)        # past the conflict back-off
        assert db.stats.degradation_steps_applied == 8
        assert db.level_histogram("trace", "location") == {1: 8}

    def test_deferred_steps_keep_original_lag_base(self):
        db = build_trace_engine()
        insert_wave(db, 3)
        reader = db.begin()
        db.execute("SELECT * FROM trace", txn=reader)
        db.advance_time(hours=2)
        db.commit(reader)
        db.advance_time(seconds=2)
        # Lag is measured against the original due time (1 h), not the retry.
        assert db.scheduler.stats.max_lag >= 3600.0


class TestEventInterleaving:
    def test_event_then_timed_steps_through_engine(self):
        """A timed step that follows an event transition fires relative to the
        event — interleaved with other purely timed records."""
        db = build_trace_engine(
            transitions=[{"event": "case_closed"}, "1 day", "1 month", "3 months"])
        db.execute(f"INSERT INTO trace VALUES (1, '{PARIS}')")
        db.advance_time(days=30)          # no event yet: still fully accurate
        assert db.level_histogram("trace", "location") == {0: 1}
        db.fire_event("case_closed")      # address -> city immediately
        assert db.level_histogram("trace", "location") == {1: 1}
        db.advance_time(days=1, seconds=1)   # city -> region, 1 day after the event
        assert db.level_histogram("trace", "location") == {2: 1}

    def test_timed_and_event_records_interleave_in_one_drain(self):
        db = InstantDB()
        location = db.register_domain(build_location_tree())
        db.register_policy(AttributeLCP(location, transitions=["1 hour", "1 day",
                                                               "1 month", "3 months"],
                                        name="timed_lcp"))
        db.register_policy(AttributeLCP(location, states=[0, 1, 4],
                                        transitions=[{"event": "released"}, "1 day"],
                                        name="event_lcp"))
        db.execute("CREATE TABLE timed (id INT PRIMARY KEY, location TEXT "
                   "DEGRADABLE DOMAIN location POLICY timed_lcp)")
        db.execute("CREATE TABLE held (id INT PRIMARY KEY, location TEXT "
                   "DEGRADABLE DOMAIN location POLICY event_lcp)")
        db.execute(f"INSERT INTO timed VALUES (1, '{PARIS}')")
        db.execute(f"INSERT INTO held VALUES (1, '{LYON}')")
        db.fire_event("released")         # held: address -> city at t=0
        db.advance_time(days=2)
        # One drain applied steps of both tables: timed went two steps, and the
        # held record's post-event timed step (1 day after the event) fired too,
        # completing its fully-suppressing life cycle — the row is removed.
        assert db.level_histogram("timed", "location") == {2: 1}
        assert db.row_count("held") == 0
        assert db.stats.rows_removed_by_policy == 1
        assert db.scheduler.stats.records_completed == 1

    def test_cancelled_record_ignores_later_event(self):
        db = build_trace_engine(
            transitions=[{"event": "go"}, "1 day", "1 month", "3 months"])
        db.execute(f"INSERT INTO trace VALUES (1, '{PARIS}')")
        db.execute("DELETE FROM trace WHERE id = 1")
        assert db.fire_event("go") == []
        assert db.scheduler.registered_count() == 0


class TestBacklogReporting:
    def test_backlog_counts_overdue_steps_publicly(self):
        db = build_trace_engine()
        insert_wave(db, 9)
        db.daemon.pause()
        db.advance_time(hours=2)
        assert db.daemon.backlog() == 9
        assert db.scheduler.overdue_count(db.now()) == 9
        db.daemon.resume()
        db.run_degradation()
        assert db.daemon.backlog() == 0

    def test_backlog_zero_when_nothing_due(self):
        db = build_trace_engine()
        insert_wave(db, 3)
        assert db.daemon.backlog() == 0
