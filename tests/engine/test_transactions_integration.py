"""Transactions at the engine level: atomicity, isolation against degradation."""

import pytest

from repro.core.errors import TransactionAborted

from ..conftest import build_engine

PARIS = "1 Main Street, Paris"
LYON = "2 Station Road, Lyon"


@pytest.fixture
def db():
    db = build_engine()
    db.execute("DECLARE PURPOSE city SET ACCURACY LEVEL city FOR person.location")
    return db


class TestExplicitTransactions:
    def test_commit_makes_inserts_visible(self, db):
        txn = db.begin()
        db.execute(f"INSERT INTO person (id, location) VALUES (1, '{PARIS}')", txn=txn)
        db.execute(f"INSERT INTO person (id, location) VALUES (2, '{LYON}')", txn=txn)
        db.commit(txn)
        assert db.row_count("person") == 2

    def test_rollback_undoes_inserts_and_scheduling(self, db):
        txn = db.begin()
        db.execute(f"INSERT INTO person (id, location) VALUES (1, '{PARIS}')", txn=txn)
        assert db.row_count("person") == 1
        db.rollback(txn)
        assert db.row_count("person") == 0
        assert db.scheduler.registered_count() == 0
        # No degradation ever fires for the rolled-back tuple.
        db.advance_time(days=800)
        assert db.stats.degradation_steps_applied == 0

    def test_rolled_back_insert_not_recoverable(self, db):
        from repro.privacy.forensic import scan_engine
        txn = db.begin()
        db.execute(f"INSERT INTO person (id, location) VALUES (1, '{PARIS}')", txn=txn)
        db.rollback(txn)
        report = scan_engine(db, [PARIS], table="person")
        assert report.clean, report.summary()

    def test_reads_within_transaction_hold_locks(self, db):
        db.execute(f"INSERT INTO person (id, location) VALUES (1, '{PARIS}')")
        txn = db.begin()
        db.execute("SELECT * FROM person", txn=txn)
        assert db.transactions.locks.locks_held(txn.txn_id) == {"person"}
        db.commit(txn)
        assert db.transactions.locks.locks_held(txn.txn_id) == set()

    def test_writer_blocks_other_writer(self, db):
        writer = db.begin()
        db.execute(f"INSERT INTO person (id, location) VALUES (1, '{PARIS}')", txn=writer)
        with pytest.raises(TransactionAborted):
            db.execute(f"INSERT INTO person (id, location) VALUES (2, '{LYON}')")
        db.commit(writer)
        # After commit the implicit writer can proceed.
        db.execute(f"INSERT INTO person (id, location) VALUES (2, '{LYON}')")
        assert db.row_count("person") == 2

    def test_reader_blocks_writer_but_not_reader(self, db):
        db.execute(f"INSERT INTO person (id, location) VALUES (1, '{PARIS}')")
        reader = db.begin()
        db.execute("SELECT * FROM person", txn=reader)
        # Another read is fine (shared locks are compatible).
        assert len(db.execute("SELECT * FROM person")) == 1
        # A write must wait.
        with pytest.raises(TransactionAborted):
            db.execute("DELETE FROM person", txn=None)
        db.commit(reader)
        assert db.execute("DELETE FROM person") == 1


class TestDegradationVersusTransactions:
    def test_degradation_defers_while_reader_holds_lock(self, db):
        db.execute(f"INSERT INTO person (id, location) VALUES (1, '{PARIS}')")
        reader = db.begin()
        db.execute("SELECT * FROM person", txn=reader)
        # The first degradation step becomes due while the reader still holds
        # its shared lock: the step is deferred, not lost.
        db.advance_time(hours=2)
        assert db.stats.degradation_conflicts >= 1
        assert db.stats.degradation_steps_applied == 0
        db.commit(reader)
        db.advance_time(seconds=2)
        assert db.stats.degradation_steps_applied >= 1
        assert db.execute("SELECT location FROM person", purpose="city").rows == [("Paris",)]

    def test_degradation_runs_between_transactions(self, db):
        db.execute(f"INSERT INTO person (id, location) VALUES (1, '{PARIS}')")
        db.advance_time(hours=2)
        assert db.stats.degradation_conflicts == 0
        assert db.stats.degradation_steps_applied >= 1

    def test_conflicts_recorded_in_transaction_stats(self, db):
        db.execute(f"INSERT INTO person (id, location) VALUES (1, '{PARIS}')")
        reader = db.begin()
        db.execute("SELECT * FROM person", txn=reader)
        db.advance_time(hours=2)
        assert db.transactions.stats.reader_degrader_conflicts >= 1
        db.commit(reader)

    def test_degradation_uses_system_transactions(self, db):
        db.execute(f"INSERT INTO person (id, location) VALUES (1, '{PARIS}')")
        before = db.transactions.stats.system_begun
        db.advance_time(hours=2)
        assert db.transactions.stats.system_begun > before

    def test_insert_effects_continue_after_commit(self, db):
        """The paper: a committed insert keeps producing effects (degradation
        steps) long after the transaction ended."""
        txn = db.begin()
        db.execute(f"INSERT INTO person (id, location) VALUES (1, '{PARIS}')", txn=txn)
        db.commit(txn)
        db.advance_time(days=40)
        db.execute("DECLARE PURPOSE country SET ACCURACY LEVEL country FOR person.location")
        assert db.execute("SELECT location FROM person", purpose="country").rows == [("France",)]
