"""Basic engine behaviour: DDL, DML, SELECT, purposes, EXPLAIN."""

import pytest

from repro import InstantDB
from repro.core.errors import (
    CatalogError,
    ConfigurationError,
    ExecutionError,
    ParseError,
    PolicyError,
)
from repro.query.executor import QueryResult

from ..conftest import build_engine


class TestDDL:
    def test_create_table_registers_schema_and_policy(self, empty_db):
        info = empty_db.catalog.table("person")
        assert info.schema.has_column("location")
        assert info.policy is not None
        assert set(info.policy.degradable_columns()) == {"location", "salary"}

    def test_create_table_unknown_domain_rejected(self):
        db = InstantDB()
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE t (x TEXT DEGRADABLE DOMAIN nowhere POLICY p)")

    def test_create_table_unknown_policy_rejected(self):
        db = InstantDB()
        from repro.core.domains import build_location_tree
        db.register_domain(build_location_tree())
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE t (x TEXT DEGRADABLE DOMAIN location POLICY ghost)")

    def test_duplicate_table_rejected(self, empty_db):
        with pytest.raises(CatalogError):
            empty_db.execute("CREATE TABLE person (id INT)")

    def test_drop_table(self, empty_db):
        empty_db.execute("INSERT INTO person (id, name, location) "
                         "VALUES (1, 'a', '1 Main Street, Paris')")
        empty_db.execute("DROP TABLE person")
        assert "person" not in empty_db.tables()
        with pytest.raises(CatalogError):
            empty_db.execute("SELECT * FROM person")

    def test_describe_lists_schema_and_policies(self, empty_db):
        text = empty_db.describe()
        assert "person" in text and "location_lcp" in text

    def test_register_policy_inline(self):
        db = InstantDB()
        from repro.core.domains import build_location_tree
        db.register_domain(build_location_tree())
        policy = db.register_policy(domain="location",
                                    transitions=["1 h", "1 d", "1 w", "1 month"])
        assert policy.name == "location_lcp"
        with pytest.raises(ConfigurationError):
            db.register_policy()

    def test_unsupported_statement_type(self, empty_db):
        with pytest.raises(ParseError):
            empty_db.execute("VACUUM person")


class TestInsertAndSelect:
    def test_insert_returns_affected_count(self, empty_db):
        count = empty_db.execute(
            "INSERT INTO person (id, user_id, name, location, salary, activity) VALUES "
            "(1, 10, 'alice', '1 Main Street, Paris', 2500, 'work'), "
            "(2, 11, 'bob', '2 Station Road, Lyon', 3100, 'travel')"
        )
        assert count == 2
        assert empty_db.row_count("person") == 2

    def test_select_star_returns_query_result(self, empty_db):
        empty_db.execute("INSERT INTO person (id, name, location) "
                         "VALUES (1, 'a', '1 Main Street, Paris')")
        result = empty_db.execute("SELECT * FROM person")
        assert isinstance(result, QueryResult)
        assert len(result) == 1
        assert result.to_dicts()[0]["location"] == "1 Main Street, Paris"

    def test_insert_with_column_subset_fills_nulls(self, empty_db):
        empty_db.execute("INSERT INTO person (id, location) VALUES (5, '1 Main Street, Paris')")
        row = empty_db.visible_rows("person")[0]
        from repro.core.values import NULL
        assert row["name"] is NULL

    def test_insert_arity_mismatch_rejected(self, empty_db):
        with pytest.raises(ExecutionError):
            empty_db.execute("INSERT INTO person (id, name) VALUES (1)")

    def test_insert_unknown_location_value_rejected(self, empty_db):
        from repro.core.errors import UnknownValueError
        empty_db.execute("INSERT INTO person (id, location) VALUES (1, 'Atlantis Street')")
        # The value is stored (validation happens on degradation); degrading it fails
        # loudly rather than silently inventing data.
        empty_db.execute("DECLARE PURPOSE c SET ACCURACY LEVEL city FOR person.location")
        with pytest.raises(UnknownValueError):
            empty_db.execute("SELECT location FROM person", purpose="c")

    def test_query_helper_rejects_non_select(self, empty_db):
        with pytest.raises(ExecutionError):
            empty_db.query("INSERT INTO person (id) VALUES (1)")

    def test_where_filters(self, populated_db):
        result = populated_db.execute(
            "SELECT id, user_id FROM person WHERE user_id = 3")
        assert all(row[1] == 3 for row in result.rows)

    def test_order_by_and_limit(self, populated_db):
        result = populated_db.execute(
            "SELECT id, salary FROM person ORDER BY salary DESC LIMIT 5")
        salaries = result.column("salary")
        assert len(salaries) == 5
        assert salaries == sorted(salaries, reverse=True)

    def test_aggregate_count(self, populated_db):
        result = populated_db.execute("SELECT COUNT(*) AS n FROM person")
        assert result.rows[0][0] == 40

    def test_group_by(self, populated_db):
        result = populated_db.execute(
            "SELECT activity, COUNT(*) AS n FROM person GROUP BY activity")
        total = sum(row[1] for row in result.rows)
        assert total == 40

    def test_explain_shows_plan(self, populated_db):
        result = populated_db.execute("EXPLAIN SELECT * FROM person WHERE user_id = 1")
        plan_text = "\n".join(row[0] for row in result.rows)
        assert "SeqScan" in plan_text

    def test_execute_script(self, empty_db):
        results = empty_db.execute_script(
            "INSERT INTO person (id, location) VALUES (1, '1 Main Street, Paris');"
            "SELECT COUNT(*) AS n FROM person;"
        )
        assert results[0] == 1
        assert results[1].rows[0][0] == 1


class TestUpdateDelete:
    def test_update_stable_column(self, populated_db):
        count = populated_db.execute("UPDATE person SET activity = 'audited' WHERE user_id = 3")
        assert count >= 1
        result = populated_db.execute("SELECT activity FROM person WHERE user_id = 3")
        assert all(value == "audited" for value in result.column("activity"))

    def test_update_degradable_column_rejected(self, populated_db):
        with pytest.raises(PolicyError):
            populated_db.execute("UPDATE person SET location = 'elsewhere' WHERE id = 1")

    def test_delete_with_predicate(self, populated_db):
        before = populated_db.row_count("person")
        deleted = populated_db.execute("DELETE FROM person WHERE user_id = 3")
        assert deleted >= 1
        assert populated_db.row_count("person") == before - deleted

    def test_delete_all(self, populated_db):
        deleted = populated_db.execute("DELETE FROM person")
        assert deleted == 40
        assert populated_db.row_count("person") == 0

    def test_update_unknown_column_rejected(self, populated_db):
        from repro.core.errors import SchemaError
        with pytest.raises(SchemaError):
            populated_db.execute("UPDATE person SET ghost = 1")


class TestPurposes:
    def test_declare_purpose_registers(self, empty_db):
        empty_db.execute("DECLARE PURPOSE stat SET ACCURACY LEVEL country FOR person.location")
        purpose = empty_db.purpose("stat")
        assert purpose.requirement_for("person", "location") is not None

    def test_unknown_purpose_rejected(self, populated_db):
        with pytest.raises(CatalogError):
            populated_db.execute("SELECT * FROM person", purpose="ghost")

    def test_purpose_object_accepted_directly(self, populated_db):
        from repro.core.policy import Purpose
        purpose = Purpose("adhoc").require("person", "location", "country")
        result = populated_db.execute("SELECT location FROM person", purpose=purpose)
        assert set(result.column("location")) <= {"France", "Netherlands", "Belgium",
                                                  "Germany", "Spain", "Italy"}

    def test_redeclaring_purpose_replaces_it(self, empty_db):
        empty_db.execute("DECLARE PURPOSE p SET ACCURACY LEVEL city FOR person.location")
        empty_db.execute("DECLARE PURPOSE p SET ACCURACY LEVEL country FOR person.location")
        scheme = empty_db.catalog.scheme_for("person", "location")
        assert empty_db.purpose("p").accuracy_for("person", "location", scheme) == 3


class TestEngineConfiguration:
    def test_wall_clock_engine_rejects_advance_time(self):
        db = InstantDB(clock="wall")
        with pytest.raises(ConfigurationError):
            db.advance_time(hours=1)

    def test_crypto_strategy_engine_works_end_to_end(self):
        db = build_engine(strategy="crypto")
        db.execute("INSERT INTO person (id, location, salary) "
                   "VALUES (1, '1 Main Street, Paris', 2000)")
        assert db.execute("SELECT location FROM person").rows == [("1 Main Street, Paris",)]
        db.advance_time(hours=2)
        db.execute("DECLARE PURPOSE c SET ACCURACY LEVEL city FOR person.location")
        assert db.execute("SELECT location FROM person", purpose="c").rows == [("Paris",)]

    def test_close_flushes(self, tmp_path):
        db = build_engine(data_dir=str(tmp_path / "data"))
        db.execute("INSERT INTO person (id, location) VALUES (1, '1 Main Street, Paris')")
        db.close()
        assert (tmp_path / "data" / "pages.db").exists()
        assert (tmp_path / "data" / "wal.log").exists()
