"""Crash recovery of the degradation schedule (the durable due-queue).

The paper's promise is *timely* degradation regardless of what happens to the
process.  These tests kill the engine at every awkward moment — mid-wave
between the WAL flush and the step application, while a deferral is pending,
between an event firing and its released steps — reopen the database
directory, run :meth:`InstantDB.recover`, and assert that every overdue step
fires **exactly once**: no step is lost, no tuple is degraded twice.
"""

import pytest

from repro import AttributeLCP, InstantDB
from repro.core.clock import DAY, HOUR
from repro.core.domains import build_location_tree

PARIS = "1 Main Street, Paris"
LYON = "2 Station Road, Lyon"

#: Fig. 2 cadence: address -1h-> city -1d-> region -1mo-> country -3mo-> gone.
TRANSITIONS = ["1 hour", "1 day", "1 month", "3 months"]

#: Same automaton but the first transition waits for a named event.
EVENT_TRANSITIONS = [{"event": "consent_revoked"}, "1 day", "1 month", "3 months"]


def build_trace_db(data_dir, transitions=TRANSITIONS, **kwargs) -> InstantDB:
    """A single-table engine over ``data_dir`` (reopening re-runs the DDL)."""
    db = InstantDB(data_dir=str(data_dir), **kwargs)
    location = db.register_domain(build_location_tree())
    db.register_policy(AttributeLCP(location, transitions=transitions,
                                    name="location_lcp"))
    db.execute("CREATE TABLE trace (id INT PRIMARY KEY, location TEXT "
               "DEGRADABLE DOMAIN location POLICY location_lcp)")
    return db


def insert_wave(db: InstantDB, count: int, address: str = PARIS) -> None:
    db.executemany("INSERT INTO trace VALUES (?, ?)",
                   [(index, address) for index in range(1, count + 1)])


def crash(db: InstantDB) -> None:
    """Abandon the engine without close(): no checkpoint, no final flush."""
    db.daemon.pause()            # nothing may run while "the process is dead"


def _city_rows(db: InstantDB):
    db.execute("DECLARE PURPOSE _city SET ACCURACY LEVEL city "
               "FOR trace.location")
    return db.execute("SELECT * FROM trace", purpose="_city").to_dicts()


class TestOverdueStepsAfterCrash:
    def test_wedged_daemon_backlog_drains_once_on_reopen(self, tmp_path):
        db = build_trace_db(tmp_path)
        insert_wave(db, 5)
        db.daemon.pause()                     # the daemon dies first...
        db.advance_time(hours=2)              # ...steps come due, unapplied
        db.execute(f"INSERT INTO trace VALUES (99, '{LYON}')")   # ts proof
        assert db.daemon.backlog() == 5
        assert db.stats.degradation_steps_applied == 0
        crash(db)

        db2 = build_trace_db(tmp_path)
        report = db2.recover()
        # Every overdue step fired exactly once; the late insert is untouched.
        assert report.overdue_steps_applied == 5
        assert report.registrations == 6
        assert report.recovered_to == 2 * HOUR
        assert db2.level_histogram("trace", "location") == {1: 5, 0: 1}
        assert db2.daemon.backlog() == 0
        assert db2.daemon.stats.catch_up_steps == 5
        # Row 99 was inserted at t=2h: its first step is due at 3h.
        assert db2.scheduler.peek_next_due() == 2 * HOUR + HOUR

    def test_kill_between_wal_flush_and_step_application(self, tmp_path):
        """The acceptance scenario: crash mid-wave, after the WAL flush of the
        first batch but before the remaining batches apply."""
        db = build_trace_db(tmp_path, degradation_max_batch=2)
        insert_wave(db, 6)

        original = db.daemon.batch_applier
        calls = {"count": 0}

        def crashing_applier(key, steps):
            calls["count"] += 1
            if calls["count"] > 1:            # batch 1 committed + flushed,
                raise KeyboardInterrupt      # then the process is killed
            return original(key, steps)

        db.daemon.batch_applier = crashing_applier
        with pytest.raises(KeyboardInterrupt):
            db.advance_time(hours=2)
        assert db.stats.degradation_steps_applied == 2
        crash(db)

        db2 = build_trace_db(tmp_path, degradation_max_batch=2)
        report = db2.recover()
        # The two logged steps are *replayed* (not re-applied); the four
        # unapplied ones come back overdue and fire exactly once.
        assert report.schedule.steps_replayed == 2
        assert report.overdue_steps_applied == 4
        assert db2.stats.degradation_steps_applied == 4
        assert db2.level_histogram("trace", "location") == {1: 6}
        assert db2.daemon.backlog() == 0
        # Nothing was double-degraded: every row sits exactly one step along,
        # with its next step due at the original cadence.
        assert db2.scheduler.peek_next_due() == HOUR + DAY

    def test_huge_waves_chunk_their_schedule_records(self, tmp_path, monkeypatch):
        """A wave larger than one record's field cap spans several SCHED_STEP
        records in the same system transaction; replay reads them all."""
        from repro.engine import database as database_module
        from repro.storage.wal import LogRecordType

        monkeypatch.setattr(database_module, "_SCHED_RECORD_CHUNK", 2)
        db = build_trace_db(tmp_path)
        insert_wave(db, 5)
        db.advance_time(hours=2)
        step_records = [record for record in db.wal
                        if record.record_type is LogRecordType.SCHED_STEP]
        assert len(step_records) == 3          # ceil(5 / 2)
        crash(db)

        db2 = build_trace_db(tmp_path)
        report = db2.recover()
        assert report.schedule.steps_replayed == 5
        assert report.overdue_steps_applied == 0
        assert db2.level_histogram("trace", "location") == {1: 5}

    def test_recovered_rows_survive_scrubbed_log_images(self, tmp_path):
        """Degraded rows exist only on their flushed pages (their accurate log
        images are scrubbed); recovery must find those pages again."""
        db = build_trace_db(tmp_path)
        insert_wave(db, 3)
        db.advance_time(hours=2)              # degrade + scrub the log images
        crash(db)

        db2 = build_trace_db(tmp_path)
        report = db2.recover()
        assert report.schedule.registrations_dropped == 0
        assert db2.row_count("trace") == 3
        assert db2.level_histogram("trace", "location") == {1: 3}
        # The accurate addresses are gone for good, even after recovery.
        assert PARIS.encode() not in db2.forensic_image()


class TestCleanShutdownSnapshot:
    def test_recovery_restores_from_snapshot_not_tail(self, tmp_path):
        db = build_trace_db(tmp_path)
        insert_wave(db, 5)
        db.advance_time(hours=2)
        db.close()                            # writes the SCHED_CHECKPOINT

        db2 = build_trace_db(tmp_path)
        report = db2.recover()
        assert report.schedule.snapshot_lsn > 0
        assert report.schedule.snapshot_restored == 5
        # The whole schedule came from the snapshot; the tail had nothing.
        assert report.schedule.registrations_replayed == 0
        assert report.schedule.steps_replayed == 0
        assert report.overdue_steps_applied == 0
        # Cadence preserved: next step 1 day after the first one fired at 1h.
        assert db2.scheduler.peek_next_due() == HOUR + DAY
        assert db2.scheduler.current_state(("trace", 1)) == {"location": 1}

    def test_torn_snapshot_tail_falls_back_to_previous_checkpoint(self, tmp_path):
        """A checkpoint whose marker is lost to a torn tail write must not
        shadow the previous intact snapshot."""
        db = build_trace_db(tmp_path)
        insert_wave(db, 3)
        db.checkpoint(truncate_wal=True)      # intact snapshot run + marker
        db.advance_time(hours=2)
        db.checkpoint()                       # second snapshot run + marker
        # Simulate the torn tail: the second marker (the last record) never
        # reached the disk, exactly what WriteAheadLog._load chops.
        records = db.wal.records()
        assert records[-1].record_type.name == "CHECKPOINT"
        db.wal._records = records[:-1]
        db.wal._rewrite_file()
        crash(db)

        db2 = build_trace_db(tmp_path)
        report = db2.recover()
        # Recovery anchored on the first (intact) checkpoint and replayed the
        # tail behind it — nothing was silently lost.
        assert report.registrations == 3
        assert report.overdue_steps_applied == 0
        assert db2.level_histogram("trace", "location") == {1: 3}
        assert db2.scheduler.peek_next_due() == HOUR + DAY

    def test_checkpoint_truncation_keeps_schedule_and_pages(self, tmp_path):
        db = build_trace_db(tmp_path)
        insert_wave(db, 4)
        db.advance_time(hours=2)
        db.checkpoint(truncate_wal=True)      # drops the log prefix
        db.execute(f"INSERT INTO trace VALUES (50, '{LYON}')")
        crash(db)

        db2 = build_trace_db(tmp_path)
        report = db2.recover()
        # Snapshot from the surviving checkpoint + the one tail registration.
        assert report.schedule.snapshot_restored == 4
        assert report.schedule.registrations_replayed == 1
        assert db2.row_count("trace") == 5
        assert db2.level_histogram("trace", "location") == {1: 4, 0: 1}


class TestDeferralsAndEvents:
    def test_deferred_step_survives_crash(self, tmp_path):
        db = build_trace_db(tmp_path)
        insert_wave(db, 1)
        blocker = db.begin()
        db.execute("SELECT * FROM trace", txn=blocker)   # shared lock held
        db.advance_time(hours=2)              # lock conflict -> batch deferred
        assert db.stats.degradation_conflicts == 1
        assert db.stats.degradation_steps_applied == 0
        crash(db)                             # dies before the retry fires

        db2 = build_trace_db(tmp_path)
        report = db2.recover()
        assert report.schedule.defers_replayed == 1
        # The retry time (conflict + 1s) is still in the future at t=2h...
        assert report.overdue_steps_applied == 0
        assert db2.daemon.backlog() == 0
        # ...and the step fires once the clock passes it, with its original
        # due time (1h) intact for lag accounting.
        db2.advance_time(seconds=2)
        assert db2.stats.degradation_steps_applied == 1
        assert db2.scheduler.stats.max_lag == pytest.approx(HOUR + 2)
        assert db2.level_histogram("trace", "location") == {1: 1}

    def test_event_fired_but_steps_unapplied_at_crash(self, tmp_path):
        db = build_trace_db(tmp_path, transitions=EVENT_TRANSITIONS)
        insert_wave(db, 2)
        db.advance_time(hours=5)              # nothing due: waiting on event

        def crashing_applier(key, steps):     # killed before any step applies
            raise KeyboardInterrupt

        db.daemon.batch_applier = crashing_applier
        with pytest.raises(KeyboardInterrupt):
            db.fire_event("consent_revoked")  # the firing itself is durable
        crash(db)

        db2 = build_trace_db(tmp_path, transitions=EVENT_TRANSITIONS)
        report = db2.recover()
        assert report.schedule.events_replayed == 1
        # The released steps came back overdue at the firing time and applied.
        assert report.overdue_steps_applied == 2
        assert db2.level_histogram("trace", "location") == {1: 2}
        # Timed follow-up runs relative to the event, as in live operation.
        assert db2.scheduler.peek_next_due() == 5 * HOUR + DAY

    def test_event_waiters_survive_clean_shutdown(self, tmp_path):
        db = build_trace_db(tmp_path, transitions=EVENT_TRANSITIONS)
        insert_wave(db, 2)
        db.close()

        db2 = build_trace_db(tmp_path, transitions=EVENT_TRANSITIONS)
        report = db2.recover()
        assert report.schedule.snapshot_restored == 2
        assert db2.daemon.backlog() == 0
        db2.fire_event("consent_revoked")
        assert db2.level_histogram("trace", "location") == {1: 2}


class TestScheduleHygieneAcrossRestart:
    def test_deleted_rows_are_not_resurrected(self, tmp_path):
        db = build_trace_db(tmp_path)
        insert_wave(db, 3)
        db.execute("DELETE FROM trace WHERE id = 2")
        crash(db)

        db2 = build_trace_db(tmp_path)
        report = db2.recover()
        assert report.registrations == 2
        assert report.schedule.registrations_dropped == 1
        assert not db2.scheduler.is_registered(("trace", 2))
        assert db2.row_count("trace") == 2

    def test_recreated_table_ignores_old_epoch_records(self, tmp_path):
        """A re-created table reuses row keys; recovery must not replay the
        dropped incarnation's removals (or registrations) against it."""
        db = build_trace_db(tmp_path)
        insert_wave(db, 1)
        db.execute("DROP TABLE trace")
        db.execute("CREATE TABLE trace (id INT PRIMARY KEY, location TEXT "
                   "DEGRADABLE DOMAIN location POLICY location_lcp)")
        db.execute(f"INSERT INTO trace VALUES (1, '{LYON}')")
        db.advance_time(hours=2)      # new row degrades: its log image is
        crash(db)                     # scrubbed, it exists only on its page

        db2 = build_trace_db(tmp_path)
        report = db2.recover()
        # The new epoch's row survives with its degraded state and schedule.
        assert db2.row_count("trace") == 1
        assert db2.level_histogram("trace", "location") == {1: 1}
        assert report.registrations == 1
        assert db2.scheduler.current_state(("trace", 1)) == {"location": 1}
        assert db2.scheduler.peek_next_due() == HOUR + DAY

    def test_loser_transaction_inserts_never_enter_the_schedule(self, tmp_path):
        db = build_trace_db(tmp_path)
        insert_wave(db, 1)
        open_txn = db.begin()
        db.execute(f"INSERT INTO trace VALUES (7, '{LYON}')", txn=open_txn)
        db.wal.flush()                        # the crash hits mid-transaction
        crash(db)

        db2 = build_trace_db(tmp_path)
        report = db2.recover()
        # The loser's row never survives (its page was not flushed and its
        # insert is not redone) and its registration is not replayed.
        assert open_txn.txn_id in report.recovery.loser_txns
        assert db2.row_count("trace") == 1
        assert report.registrations == 1
        assert not db2.scheduler.is_registered(("trace", 2))

    def test_dropped_table_does_not_block_recovery(self, tmp_path):
        db = build_trace_db(tmp_path)
        insert_wave(db, 2)
        db.execute("CREATE TABLE scratch (id INT PRIMARY KEY, location TEXT "
                   "DEGRADABLE DOMAIN location POLICY location_lcp)")
        db.execute(f"INSERT INTO scratch VALUES (1, '{LYON}')")
        db.execute("DROP TABLE scratch")
        crash(db)

        # The reopened catalog does not recreate the dropped table; its
        # surviving log records (inserts, page allocs, removals) are skipped.
        db2 = build_trace_db(tmp_path)
        report = db2.recover()
        assert report.registrations == 2
        assert db2.tables() == ["trace"]
        assert db2.row_count("trace") == 2

    def test_event_without_waiters_writes_no_log_record(self, tmp_path):
        from repro.storage.wal import LogRecordType

        db = build_trace_db(tmp_path)          # timed policy: no event waiters
        insert_wave(db, 1)
        flushes = db.wal.stats.flushed
        assert db.fire_event("nobody_waits") == []
        assert db.wal.stats.flushed == flushes
        assert all(record.record_type is not LogRecordType.SCHED_EVENT
                   for record in db.wal)

    def test_row_keys_are_not_reused_after_recovery(self, tmp_path):
        """Keys freed by a removal must stay retired: a reused key would
        collide with the old incarnation's surviving REMOVE records on the
        *next* recovery and silently delete the new committed row."""
        db = build_trace_db(tmp_path)
        insert_wave(db, 3)
        db.execute("DELETE FROM trace WHERE id = 3")   # frees row key 3
        crash(db)

        db2 = build_trace_db(tmp_path)
        db2.recover()
        new_key = db2.insert_row("trace", {"id": 9, "location": LYON})
        assert new_key == 4                            # 3 stays retired
        db2.advance_time(hours=2)                      # scrub the new insert
        crash(db2)

        db3 = build_trace_db(tmp_path)
        db3.recover()
        # The new row survives the second recovery (no stale REMOVE replay).
        assert db3.row_count("trace") == 3
        assert {row["id"] for row in _city_rows(db3)} == {1, 2, 9}

    def test_per_tuple_override_survives_selector_degradation(self, tmp_path):
        """Recovery must restore the override automaton even though the
        selector value that picked it has since been degraded/suppressed."""
        def build(path):
            db = build_trace_db(path)
            db.execute("CREATE TABLE users (id INT PRIMARY KEY, "
                       "owner TEXT DEGRADABLE DOMAIN location POLICY location_lcp)")
            db.register_policy(domain="location",
                               transitions=["30 min", "1 hour", "1 day", "1 week"],
                               name="paranoid_lcp")
            policy = db.table_policy("users")
            policy.selector_column = "owner"
            db.register_user_policy(
                "users", "1 Main Street, Paris",
                {"owner": db.registry.policy("paranoid_lcp")})
            return db

        db = build(tmp_path)
        db.insert_row("users", {"id": 1, "owner": "1 Main Street, Paris"})
        db.advance_time(hours=2)     # override steps fire; the selector value
        crash(db)                    # itself is now degraded past recognition

        db2 = build(tmp_path)
        db2.recover()
        # Selector-based re-resolution would now miss the override (the
        # stored value is no longer '1 Main Street, Paris'); the persisted
        # policy names keep the paranoid cadence: 30min + 1h steps have both
        # fired by t=2h, and the next (1 day) step counts from t=1.5h.
        assert db2.scheduler.current_state(("users", 1)) == {"owner": 2}
        assert db2.scheduler.peek_next_due() == 1.5 * HOUR + DAY

    def test_indexes_are_rebuilt_from_recovered_rows(self, tmp_path):
        """Secondary indexes were populated against still-empty stores by the
        re-run DDL; recovery must refill them or index-backed queries return
        wrong results and GT maintenance crashes on the next wave."""
        def build(path):
            db = build_trace_db(path)
            db.execute("CREATE INDEX idx_id ON trace (id) USING hash")
            db.execute("CREATE INDEX idx_loc ON trace (location) USING gt")
            return db

        db = build(tmp_path)
        insert_wave(db, 3)
        db.advance_time(hours=2)
        crash(db)

        db2 = build(tmp_path)
        db2.recover()
        # Index-backed equality lookup finds the recovered row...
        db2.execute("DECLARE PURPOSE svc SET ACCURACY LEVEL city "
                    "FOR trace.location")
        result = db2.execute("SELECT id FROM trace WHERE id = 2",
                             purpose="svc")
        assert result.rows == [(2,)]
        # ...and the next degradation wave maintains the GT index without
        # tripping over entries that were never inserted.
        db2.advance_time(days=1)
        assert db2.level_histogram("trace", "location") == {2: 3}

    def test_recovery_is_idempotent(self, tmp_path):
        db = build_trace_db(tmp_path)
        insert_wave(db, 3)
        db.daemon.pause()
        db.advance_time(hours=2)
        db.execute(f"INSERT INTO trace VALUES (99, '{LYON}')")
        crash(db)

        db2 = build_trace_db(tmp_path)
        first = db2.recover()
        assert first.overdue_steps_applied == 3
        # A second pass finds everything already applied and registered.
        second = db2.recover()
        assert second.overdue_steps_applied == 0
        assert second.registrations == first.registrations
        assert db2.level_histogram("trace", "location") == {1: 3, 0: 1}


class TestColumnarSegmentsAfterCrash:
    """Columnar waves log SEGMENT_DEGRADE chunk records; a crash mid-wave
    must leave a log that recovery can replay into correct segments and
    level vectors (the mirror is derived — the heap stays the truth)."""

    def test_mid_wave_kill_rebuilds_segments_and_level_vectors(self, tmp_path):
        from repro.storage.wal import LogRecordType

        db = build_trace_db(tmp_path, degradation_max_batch=2)
        insert_wave(db, 6)
        db.columnarize("trace")

        original = db.daemon.batch_applier
        calls = {"count": 0}

        def crashing_applier(key, steps):
            calls["count"] += 1
            if calls["count"] > 1:            # first chunk committed + flushed,
                raise KeyboardInterrupt      # then the process is killed
            return original(key, steps)

        db.daemon.batch_applier = crashing_applier
        with pytest.raises(KeyboardInterrupt):
            db.advance_time(hours=2)
        assert db.stats.degradation_steps_applied == 2
        # The committed chunk went through the segment layer: the surviving
        # log carries SEGMENT_DEGRADE records, no per-row DEGRADE records.
        assert any(r.record_type is LogRecordType.SEGMENT_DEGRADE
                   for r in db.wal)
        assert not any(r.record_type is LogRecordType.DEGRADE for r in db.wal)
        crash(db)

        db2 = build_trace_db(tmp_path, degradation_max_batch=2)
        db2.columnarize("trace")             # reopened engines re-opt in
        report = db2.recover()
        assert report.recovery.wal_prep_passes == 1
        assert report.recovery.redone_segment_chunks >= 1
        # The two logged steps are replayed, the four unapplied ones fire
        # exactly once through the catch-up drain — identical outcome to the
        # row path.
        assert report.schedule.steps_replayed == 2
        assert report.overdue_steps_applied == 4
        assert db2.level_histogram("trace", "location") == {1: 6}

        # The rebuilt mirror agrees with the recovered heap, level vectors
        # included, and the catch-up wave itself ran columnar.
        segments = db2.table_store("trace").segments
        assert segments.stats.rebuilds >= 1
        assert segments.stats.degrade_chunks >= 1
        for key in range(1, 7):
            segment, position = segments.locate(key)
            assert segment.levels["location"][position] == 1
            assert segment.values["location"][position] == "Paris"

    def test_reopen_without_columnarize_recovers_on_the_row_path(self, tmp_path):
        """The mirror is opt-in per process lifetime: a reopened engine that
        never calls columnarize() recovers and degrades row-at-a-time, even
        with SEGMENT_DEGRADE records in the log."""
        db = build_trace_db(tmp_path)
        insert_wave(db, 4)
        db.columnarize("trace")
        db.daemon.pause()
        db.advance_time(hours=2)             # steps come due, unapplied
        db.execute(f"INSERT INTO trace VALUES (99, '{LYON}')")   # ts proof
        crash(db)

        db2 = build_trace_db(tmp_path)       # no columnarize
        report = db2.recover()
        assert report.overdue_steps_applied == 4
        assert db2.table_store("trace").segments is None
        assert db2.level_histogram("trace", "location") == {1: 4, 0: 1}
