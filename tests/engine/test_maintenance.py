"""Engine maintenance surface: checkpoints, histograms, persistence, stats."""

import pytest

from repro.storage.wal import LogRecordType
from repro.txn.recovery import RecoveryManager

from ..conftest import build_engine

PARIS = "1 Main Street, Paris"
LYON = "2 Station Road, Lyon"


@pytest.fixture
def db():
    db = build_engine()
    db.execute(f"INSERT INTO person (id, user_id, name, location, salary) "
               f"VALUES (1, 1, 'alice', '{PARIS}', 2500)")
    db.execute(f"INSERT INTO person (id, user_id, name, location, salary) "
               f"VALUES (2, 2, 'bob', '{LYON}', 3100)")
    return db


class TestCheckpointing:
    def test_checkpoint_appends_record_and_counts(self, db):
        db.checkpoint()
        assert db.stats.checkpoints == 1
        types = [record.record_type for record in db.wal]
        assert LogRecordType.CHECKPOINT in types

    def test_checkpoint_with_truncation_shrinks_log(self, db):
        before = len(db.wal)
        db.checkpoint(truncate_wal=True)
        assert len(db.wal) < before
        # The engine keeps working after truncation.
        db.execute(f"INSERT INTO person (id, location) VALUES (3, '{PARIS}')")
        assert db.row_count("person") == 3

    def test_degradation_still_correct_after_truncation(self, db):
        db.checkpoint(truncate_wal=True)
        db.advance_time(hours=2)
        db.execute("DECLARE PURPOSE city SET ACCURACY LEVEL city FOR person.location")
        assert set(db.execute("SELECT location FROM person", purpose="city")
                   .column("location")) == {"Paris", "Lyon"}


class TestIntrospection:
    def test_tables_listing(self, db):
        assert db.tables() == ["person"]

    def test_level_histogram_moves_with_time(self, db):
        assert db.level_histogram("person", "location") == {0: 2}
        db.advance_time(hours=2)
        assert db.level_histogram("person", "location") == {1: 2}

    def test_visible_rows_helper(self, db):
        rows = db.visible_rows("person")
        assert {row["name"] for row in rows} == {"alice", "bob"}

    def test_forensic_image_nonempty_and_shrinks_meaning(self, db):
        image = db.forensic_image()
        assert PARIS.encode() in image
        db.advance_time(hours=2)
        assert PARIS.encode() not in db.forensic_image()

    def test_engine_stats_track_activity(self, db):
        db.execute("SELECT * FROM person")
        db.advance_time(hours=2)
        stats = db.stats
        assert stats.rows_inserted == 2
        assert stats.statements_executed >= 3
        assert stats.degradation_steps_applied >= 2

    def test_describe_round_trip_after_activity(self, db):
        db.advance_time(days=2)
        text = db.describe()
        assert "person" in text and "location_lcp" in text


class TestPersistenceAndRecovery:
    def test_data_survives_flush_and_location_rebuild(self, tmp_path):
        db = build_engine(data_dir=str(tmp_path / "data"))
        db.execute(f"INSERT INTO person (id, name, location) VALUES (1, 'alice', '{PARIS}')")
        db.checkpoint()
        store = db.table_store("person")
        # Simulate losing the in-memory row map (as a restart would) and rebuild.
        store._locations.clear()
        store.rebuild_locations()
        assert store.row_count == 1
        assert store.read(store.row_keys()[0]).values["name"] == "alice"

    def test_recovery_manager_over_engine_stores(self, db):
        # An uncommitted transaction is interrupted by a crash: recovery undoes it.
        txn = db.begin()
        db.execute(f"INSERT INTO person (id, location) VALUES (99, '{PARIS}')", txn=txn)
        report = RecoveryManager(db.wal, dict(db.stores)).recover()
        assert txn.txn_id in report.loser_txns
        assert report.undone_inserts == 1
        assert not db.table_store("person").exists(
            max(db.table_store("person").row_keys(), default=0) + 1)
        assert db.row_count("person") == 2

    def test_degradation_not_undone_by_recovery(self, db):
        db.advance_time(hours=2)
        RecoveryManager(db.wal, dict(db.stores)).recover()
        db.execute("DECLARE PURPOSE city SET ACCURACY LEVEL city FOR person.location")
        assert set(db.execute("SELECT location FROM person", purpose="city")
                   .column("location")) == {"Paris", "Lyon"}
