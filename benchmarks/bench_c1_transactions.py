"""Experiment C1 — technical challenge 1: transaction semantics under degradation.

"User transactions inserting tuples with degradable attributes generate
effects all along the lifetime of the degradation process ... even isolation
considering potential conflicts between degradation steps and reader
transactions."

Measured series: insert/query throughput with the degradation daemon off vs
on, the number of reader/degrader lock conflicts as a function of how long
reader transactions stay open, and the cost of the system transactions that
wrap each degradation step.
"""

import pytest

from repro.core.clock import HOUR
from repro.workloads import LocationTraceGenerator, OLTPMix

from .conftest import build_engine, load_trace, print_table

NUM_EVENTS = 150


def test_c1_insert_throughput_with_and_without_daemon(benchmark):
    """Inserts while past tuples keep degrading vs inserts into a quiet engine."""
    def run(daemon_enabled: bool) -> int:
        db = build_engine()
        if not daemon_enabled:
            db.daemon.pause()
        generator = LocationTraceGenerator(num_users=20, seed=31)
        for index, event in enumerate(generator.events(NUM_EVENTS, interval=3600.0),
                                      start=1):
            db.clock.advance_to(event.timestamp)   # one insert per hour -> steps due
            row = event.as_row()
            row["id"] = index
            db.insert_row("person", row)
        return db.stats.degradation_steps_applied

    steps_with_daemon = run(True)
    steps_without = run(False)
    benchmark(lambda: run(True))
    print_table("C1: degradation work piggy-backed on an insert workload",
                ["configuration", "degradation steps applied during ingest"],
                [("daemon enabled", steps_with_daemon),
                 ("daemon paused", steps_without)])
    assert steps_with_daemon > 0
    assert steps_without == 0


def test_c1_reader_degrader_conflicts(benchmark):
    """Long-running readers force degradation steps to defer (and be retried)."""
    def run(hold_reader: bool):
        db = build_engine()
        load_trace(db, 50, interval=60.0, seed=33)
        reader = None
        if hold_reader:
            reader = db.begin()
            db.execute("SELECT COUNT(*) AS n FROM person", txn=reader)
        db.advance_time(hours=2)       # first degradation step becomes due
        conflicts = db.stats.degradation_conflicts
        applied_while_held = db.stats.degradation_steps_applied
        if reader is not None:
            db.commit(reader)
        db.advance_time(seconds=2)     # deferred steps retry after the backoff
        return conflicts, applied_while_held, db.stats.degradation_steps_applied

    with_reader = run(True)
    without_reader = run(False)
    benchmark(lambda: run(False))
    print_table("C1: reader / degrader isolation",
                ["configuration", "lock conflicts", "steps applied while reader active",
                 "steps applied after commit"],
                [("reader transaction held open", with_reader[0], with_reader[1],
                  with_reader[2]),
                 ("no concurrent reader", without_reader[0], without_reader[1],
                  without_reader[2])])
    # Shape: the open reader causes conflicts and defers every step, but no step
    # is lost — they all apply once the reader commits.
    assert with_reader[0] > 0 and with_reader[1] == 0
    assert without_reader[0] == 0
    assert with_reader[2] == without_reader[2]


def test_c1_query_throughput_during_degradation(benchmark):
    """OLTP mix latency while the degradation daemon is processing steps."""
    db = build_engine(with_indexes=True)
    load_trace(db, 120, interval=600.0, seed=35)
    generator = LocationTraceGenerator(num_users=40, seed=35)
    mix = OLTPMix(generator, seed=36)
    queries = mix.queries(30)
    db.advance_time(hours=2)            # put every tuple one step into its lifecycle

    def run_mix():
        answered = 0
        for spec in queries:
            if len(db.execute(spec.sql, purpose=spec.purpose)) > 0:
                answered += 1
        return answered

    answered = benchmark(run_mix)
    print_table("C1: OLTP mix over a degrading table",
                ["metric", "value"],
                [("queries in mix", len(queries)),
                 ("queries returning rows", answered),
                 ("degradation steps applied so far", db.stats.degradation_steps_applied),
                 ("system transactions begun", db.transactions.stats.system_begun)])
    assert answered > 0
    # Degradation runs in system transactions — at least one per applied batch,
    # far fewer than one per step now that due steps are applied batched.
    assert db.transactions.stats.system_begun >= db.daemon.stats.batches > 0
    assert db.stats.degradation_steps_applied >= db.daemon.stats.batches


def test_c1_abort_rolls_back_cleanly_during_degradation(benchmark):
    """Aborting a user transaction while degradation runs leaves no residue."""
    def run():
        db = build_engine()
        load_trace(db, 30, interval=60.0, seed=37)
        db.advance_time(hours=2)
        txn = db.begin()
        db.execute("INSERT INTO person (id, location) "
                   "VALUES (999, '1 Main Street, Paris')", txn=txn)
        db.rollback(txn)
        db.advance_time(hours=1)
        return db.row_count("person"), db.stats.degradation_steps_applied

    rows, steps = benchmark(run)
    print_table("C1: rollback while the daemon is active",
                ["metric", "value"],
                [("rows after rollback", rows), ("degradation steps applied", steps)])
    assert rows == 30
    assert steps >= 30
