"""Experiment B2 — claimed benefit 2: attack window and detectability.

"To be effective, an attack targeting a database running a data degradation
process must be repeated with a frequency smaller than the duration of the
shortest degradation step.  Such continuous attacks are easily detectable."

A periodic attacker is swept over attack periods from minutes to a week, both
against the degradation policy (1-hour accurate window) and against a 1-month
retention baseline.  Reported series: fraction of the trace captured
accurately, number of break-ins required, and cumulative detection
probability.  The expected crossover: capture collapses as soon as the period
exceeds the shortest degradation step, while detection keeps climbing for
faster attacks.
"""

import pytest

from repro.core.clock import DAY, HOUR, MINUTE, MONTH, WEEK
from repro.privacy.attack import cumulative_detection, sweep_attack_periods
from repro.privacy.exposure import accurate_lifetime_of_policy

from .conftest import LOCATION_TRANSITIONS, print_table

NUM_EVENTS = 2_000
EVENT_INTERVAL = 120.0
DETECTION_PER_SNAPSHOT = 0.02
PERIODS = [("10 min", 10 * MINUTE), ("30 min", 30 * MINUTE), ("1 hour", HOUR),
           ("6 hours", 6 * HOUR), ("1 day", DAY), ("1 week", WEEK)]


@pytest.fixture(scope="module")
def insert_times():
    return [index * EVENT_INTERVAL for index in range(NUM_EVENTS)]


def test_b2_capture_vs_detection_under_degradation(benchmark, insert_times,
                                                   location_policy):
    accurate_lifetime = accurate_lifetime_of_policy(location_policy)
    horizon = insert_times[-1] + accurate_lifetime

    def sweep():
        return sweep_attack_periods(insert_times, accurate_lifetime,
                                    [period for _name, period in PERIODS],
                                    horizon=horizon,
                                    detection_per_snapshot=DETECTION_PER_SNAPSHOT)

    points = benchmark(sweep)
    rows = [(name, f"{point.capture_fraction:.1%}",
             f"{point.capture_fraction_analytic:.1%}", point.snapshots,
             f"{point.detection_probability:.2f}")
            for (name, _period), point in zip(PERIODS, points)]
    print_table("B2: periodic attacker against the degradation policy (1 h accurate)",
                ["attack period", "captured (sim)", "captured (analytic)",
                 "break-ins", "P(detected)"], rows)
    captures = [point.capture_fraction for point in points]
    detections = [point.detection_probability for point in points]
    # Shape: capture is ~1 while the period is below the shortest step, then
    # collapses; detection decreases monotonically with slower attacks.
    assert captures[0] >= 0.99
    assert captures == sorted(captures, reverse=True)
    assert captures[-1] < 0.05
    assert detections == sorted(detections, reverse=True)
    # Attacking faster than the step costs two orders of magnitude more break-ins.
    assert points[0].snapshots > 50 * points[-1].snapshots


def test_b2_retention_baseline_needs_single_breakin(benchmark, insert_times,
                                                    location_policy):
    """Against limited retention a single well-timed break-in captures everything."""
    from repro.privacy.attack import simulate_snapshot_attack

    accurate_lifetime = accurate_lifetime_of_policy(location_policy)
    attack_time = insert_times[-1] + HOUR          # one visit, after collection

    def measure():
        against_retention = simulate_snapshot_attack(
            insert_times, MONTH, [attack_time],
            detection_per_snapshot=DETECTION_PER_SNAPSHOT)
        against_degradation = simulate_snapshot_attack(
            insert_times, accurate_lifetime, [attack_time],
            detection_per_snapshot=DETECTION_PER_SNAPSHOT)
        return against_retention, against_degradation

    against_retention, against_degradation = benchmark(measure)
    print_table("B2: a single break-in right after collection",
                ["system", "captured accurately", "break-ins", "P(detected)"],
                [("limited retention (1 month)",
                  f"{against_retention.capture_fraction:.1%}", 1,
                  f"{against_retention.detection_probability:.2f}"),
                 ("InstantDB degradation (1 h accurate)",
                  f"{against_degradation.capture_fraction:.1%}", 1,
                  f"{against_degradation.detection_probability:.2f}")])
    # Shape: one break-in suffices against retention but captures almost nothing
    # against a degrading store.
    assert against_retention.capture_fraction >= 0.99
    assert against_degradation.capture_fraction < 0.05
    assert against_retention.detection_probability < 0.1


def test_b2_detection_required_to_beat_degradation(benchmark, location_policy):
    """Break-ins (and detection probability) needed to watch the store for a month."""
    accurate_lifetime = accurate_lifetime_of_policy(location_policy)

    def compute():
        rows = []
        for name, period in PERIODS:
            effective = period <= accurate_lifetime
            snapshots = int(MONTH // period) + 1
            rows.append((name, "yes" if effective else "no", snapshots,
                         cumulative_detection(DETECTION_PER_SNAPSHOT, snapshots)))
        return rows

    rows = benchmark(compute)
    print_table("B2: sustaining full capture for one month",
                ["attack period", "captures accurate data", "break-ins / month",
                 "P(detected)"],
                [(name, effective, snapshots, f"{p:.3f}")
                 for name, effective, snapshots, p in rows])
    effective_rows = [row for row in rows if row[1] == "yes"]
    assert effective_rows, "at least the fastest attack beats the degradation step"
    # Every attack fast enough to capture accurate data is detected essentially surely.
    assert all(probability > 0.99 for _n, _e, _s, probability in effective_rows)
