"""Experiment C3 — technical challenge 3: query speed on degradable attributes.

"OLTP queries become less selective when applied to degradable attributes and
OLAP must take care of updates incurred by degradation.  This introduces the
need for indexing techniques supporting efficiently degradation."

Measured series:

* selectivity of a location point query at each accuracy level (the paper's
  "less selective" effect made concrete);
* point-query cost with a sequential scan vs the degradation-aware GT index,
  before and after the table has degraded;
* index maintenance cost of one degradation wave for B+-tree / hash / bitmap /
  GT indexes (the OLAP update-load effect);
* OLAP aggregate cost while degradation runs;
* streaming-pipeline scenarios: ``LIMIT k`` early exit (O(k) rows pulled past
  the scan), ``ORDER BY + LIMIT`` through the bounded Top-N heap, and the
  build/stream hash join.

``C3_SCAN_ROWS`` scales the pipeline scenarios (CI smoke mode uses a small
value); the structural assertions — rows pulled, heap bound — hold at any
scale.
"""

import os
import time

import pytest

from repro import InstantDB
from repro.core.domains import build_location_tree
from repro.index.bitmap import BitmapIndex
from repro.index.btree import BPlusTreeIndex
from repro.index.gt_index import GTIndex
from repro.index.hashindex import HashIndex
from repro.workloads import LocationTraceGenerator

from .conftest import build_engine, load_trace, print_table, record_bench

NUM_EVENTS = 200
SCAN_ROWS = int(os.environ.get("C3_SCAN_ROWS", "2000"))
NUM_USERS = 50

#: Scale of the before/after read-path comparison (selective index scan and
#: wide-table projection); the ≥2x speedup assertion only fires at full scale
#: so CI smoke runs (small N) check structure, not timing.
PERF_ROWS = int(os.environ.get("C3_PERF_ROWS", "10000"))
WIDE_COLUMNS = 20


@pytest.fixture(scope="module")
def degraded_db():
    db = build_engine(with_indexes=True)
    load_trace(db, NUM_EVENTS, interval=30.0, seed=51)
    db.advance_time(hours=2)          # locations now at city level
    return db


def test_c3_selectivity_per_accuracy_level(benchmark, degraded_db):
    """Result cardinality of a location equality query at each accuracy level."""
    db = degraded_db
    tree = build_location_tree()
    queries = [("city", "Paris"), ("region", "Ile-de-France"), ("country", "France")]

    def measure():
        rows = []
        for level_name, value in queries:
            db.execute(f"DECLARE PURPOSE probe_{level_name} SET ACCURACY LEVEL "
                       f"{level_name} FOR person.location")
            result = db.execute(
                f"SELECT COUNT(*) AS n FROM person WHERE location = '{value}'",
                purpose=f"probe_{level_name}")
            rows.append((level_name, value, result.rows[0][0]))
        return rows

    rows = benchmark(measure)
    total = db.row_count("person")
    print_table("C3: selectivity of a location point query per accuracy level",
                ["accuracy level", "predicate value", f"matching rows (of {total})"],
                rows)
    counts = [count for _level, _value, count in rows]
    # Shape: the coarser the accuracy, the less selective the predicate.
    assert counts == sorted(counts)
    assert counts[0] < counts[-1]


def test_c3_point_query_seqscan(benchmark, degraded_db):
    db = degraded_db
    result = benchmark(lambda: db.execute(
        "SELECT id FROM person WHERE location = 'Paris' AND id > 0", purpose="service"))
    assert len(result) > 0


def test_c3_point_query_gt_index(benchmark, degraded_db):
    db = degraded_db
    explain = db.execute("EXPLAIN SELECT id FROM person WHERE location = 'Paris'",
                         purpose="service")
    assert "GTIndexScan" in explain.rows[0][0]
    result = benchmark(lambda: db.execute(
        "SELECT id FROM person WHERE location = 'Paris'", purpose="service"))
    assert len(result) > 0


def test_c3_index_maintenance_cost_of_degradation(benchmark):
    """Entries moved / structures touched when one degradation wave hits each index."""
    tree = build_location_tree()
    generator = LocationTraceGenerator(num_users=40, seed=53)
    events = [generator.event_at(float(i)) for i in range(500)]

    def run():
        indexes = {
            "btree": BPlusTreeIndex("btree"),
            "hash": HashIndex("hash"),
            "bitmap": BitmapIndex("bitmap"),
            "gt": GTIndex("gt", tree),
        }
        for row_key, event in enumerate(events):
            for name, index in indexes.items():
                if name == "gt":
                    index.insert_at(event.address, 0, row_key)
                else:
                    index.insert(event.address, row_key)
        # One degradation wave: every address becomes its city.
        for row_key, event in enumerate(events):
            city = tree.generalize(event.address, 1)
            for name, index in indexes.items():
                if name == "gt":
                    index.degrade_entry(event.address, 0, city, 1, row_key)
                else:
                    index.update(event.address, city, row_key)
        return {name: index.stats.updates for name, index in indexes.items()}

    updates = benchmark(run)
    print_table("C3: index maintenance for one degradation wave (500 tuples)",
                ["index", "entry moves"],
                [(name, count) for name, count in updates.items()])
    assert all(count == 500 for count in updates.values())


def test_c3_gt_bulk_degradation_beats_per_entry(benchmark):
    """The GT index can degrade whole buckets instead of per-row updates."""
    tree = build_location_tree()
    generator = LocationTraceGenerator(num_users=40, seed=55)
    events = [generator.event_at(float(i)) for i in range(500)]

    def run():
        index = GTIndex("gt", tree)
        for row_key, event in enumerate(events):
            index.insert_at(event.address, 0, row_key)
        moved = 0
        operations = 0
        for address in list(index.values_at_level(0)):
            moved += index.degrade_bucket(address, 0, 1)
            operations += 1
        return moved, operations

    moved, operations = benchmark(run)
    print_table("C3: GT bulk degradation (bucket moves instead of row updates)",
                ["metric", "value"],
                [("postings degraded", moved), ("bucket operations", operations)])
    assert moved == 500
    # Far fewer structural operations than per-row updates.
    assert operations < 500 / 2


def test_c3_olap_aggregate_during_degradation(benchmark, degraded_db):
    """Country-level aggregate while the table sits mid-lifecycle."""
    db = degraded_db
    result = benchmark(lambda: db.execute(
        "SELECT location, COUNT(*) AS events, AVG(salary) AS avg_salary "
        "FROM person GROUP BY location ORDER BY location", purpose="statistics"))
    assert len(result) >= 2
    assert sum(row[1] for row in result.rows) == db.row_count("person")


# -- streaming-pipeline scenarios (Volcano operators) ---------------------------


@pytest.fixture(scope="module")
def pipeline_db():
    """A stable (non-degradable) fact/dimension pair at C3_SCAN_ROWS scale."""
    db = InstantDB()
    db.execute("CREATE TABLE events (id INT PRIMARY KEY, user_id INT, score INT)")
    db.executemany("INSERT INTO events VALUES (?, ?, ?)",
                   [(i, i % NUM_USERS, (i * 37) % 1000)
                    for i in range(1, SCAN_ROWS + 1)])
    db.execute("CREATE TABLE users (uid INT PRIMARY KEY, name TEXT)")
    db.executemany("INSERT INTO users VALUES (?, ?)",
                   [(u, f"user-{u}") for u in range(NUM_USERS)])
    return db


def test_c3_limit_early_exit(benchmark, pipeline_db):
    """LIMIT k stops the whole pipeline after k rows: O(k) post-scan work."""
    db = pipeline_db
    result = benchmark(lambda: db.execute("SELECT id FROM events LIMIT 10"))
    assert len(result) == 10
    scan = result.pipeline.find("SeqScan")
    print_table("C3: LIMIT 10 early exit",
                ["metric", "value"],
                [("table rows", SCAN_ROWS),
                 ("rows pulled past the scan", scan.stats.rows_out)])
    # The scan produced exactly what Limit pulled, not the whole table.
    assert scan.stats.rows_out == 10


def test_c3_topn_bounded_heap(benchmark, pipeline_db):
    """ORDER BY + LIMIT keeps a heap of n rows instead of sorting the table."""
    db = pipeline_db
    sql = "SELECT id, score FROM events ORDER BY score DESC, id ASC LIMIT 10"
    result = benchmark(lambda: db.execute(sql))
    topn = result.pipeline.find("TopN")
    assert topn is not None and topn.max_held == 10
    full = db.execute("SELECT id, score FROM events ORDER BY score DESC, id ASC")
    assert result.rows == full.rows[:10]
    print_table("C3: Top-N heap vs full sort",
                ["metric", "value"],
                [("rows consumed", SCAN_ROWS),
                 ("heap high-water mark", topn.max_held)])


def test_c3_hash_join_build_and_stream(benchmark, pipeline_db):
    """Equi-join: build the dimension side once, stream the fact side."""
    db = pipeline_db
    sql = ("SELECT events.id, users.name FROM events "
           "JOIN users ON events.user_id = users.uid")
    result = benchmark(lambda: db.execute(sql))
    assert len(result) == SCAN_ROWS
    join = result.pipeline.find("HashJoin")
    assert join is not None and join.stats.rows_out == SCAN_ROWS


def _load_read_path_engine(optimized: bool) -> InstantDB:
    """One engine at PERF_ROWS scale; ``optimized=False`` is the measured
    baseline (tree-walking interpreter, full-row decode, heuristic plans)."""
    db = InstantDB(read_path_optimizations=optimized)
    db.execute("CREATE TABLE events (id INT PRIMARY KEY, score INT)")
    db.execute("CREATE INDEX idx_score ON events (score) USING btree")
    db.executemany("INSERT INTO events VALUES (?, ?)",
                   [(i, (i * 37) % 1000) for i in range(1, PERF_ROWS + 1)])
    # ``seq`` is deliberately unindexed: range predicates on it must go
    # through a full scan, which is the case the columnar zone maps target.
    columns = ", ".join(f"c{i:02d} TEXT" for i in range(WIDE_COLUMNS))
    db.execute(f"CREATE TABLE wide (id INT PRIMARY KEY, seq INT, {columns})")
    db.executemany(
        "INSERT INTO wide VALUES (?, ?" + ", ?" * WIDE_COLUMNS + ")",
        [tuple([i, i] + [f"row-{i}-column-{c}-payload" for c in range(WIDE_COLUMNS)])
         for i in range(1, PERF_ROWS + 1)])
    return db


def _load_columnar_engine() -> InstantDB:
    """The optimized engine with both tables mirrored into columnar segments."""
    db = _load_read_path_engine(True)
    db.columnarize("wide")
    db.columnarize("events")
    return db


@pytest.fixture(scope="module")
def read_path_pair():
    return {"before": _load_read_path_engine(False),
            "after": _load_read_path_engine(True),
            "columnar": _load_columnar_engine()}


def _throughput(db: InstantDB, sql: str, repeats: int) -> float:
    db.execute(sql)                      # warm caches / compile once
    start = time.perf_counter()
    for _ in range(repeats):
        db.execute(sql)
    return repeats / (time.perf_counter() - start)


def test_c3_read_path_selective_index_scan_speedup(read_path_pair):
    """Tentpole acceptance (a): ≥2x on a selective indexed predicate.

    The optimized engine answers the covering range query with an
    IndexOnlyScan (streamed B+-tree entries, zero heap fetches); the baseline
    runs the pre-overhaul path: materialized key list, full-row decode per
    fetched row, interpreted residual evaluation.
    """
    sql = "SELECT score FROM events WHERE score BETWEEN 250 AND 259"
    before, after = read_path_pair["before"], read_path_pair["after"]
    assert sorted(before.execute(sql).rows) == sorted(after.execute(sql).rows)
    explain = "\n".join(r[0] for r in after.execute(f"EXPLAIN {sql}").rows)
    assert "IndexOnlyScan" in explain
    repeats = max(10, min(200, 400_000 // max(PERF_ROWS, 1)))
    before_ops = _throughput(before, sql, repeats)
    after_ops = _throughput(after, sql, repeats)
    speedup = after_ops / before_ops
    print_table(f"C3: selective indexed predicate, {PERF_ROWS} rows (before/after)",
                ["path", "queries/sec"],
                [("before (interpreted, full decode)", f"{before_ops:.1f}"),
                 ("after (index-only, compiled)", f"{after_ops:.1f}"),
                 ("speedup", f"{speedup:.2f}x")])
    record_bench("c3", "selective_index_scan_before_after",
                 rows=PERF_ROWS, repeats=repeats,
                 before_ops_per_sec=round(before_ops, 1),
                 after_ops_per_sec=round(after_ops, 1),
                 speedup=round(speedup, 2))
    if PERF_ROWS >= 10_000:
        assert speedup >= 2.0


def test_c3_read_path_wide_projection_speedup(read_path_pair):
    """Tentpole acceptance (b): ≥2x on a 2-column projection of a wide table.

    The optimized scan decodes 2 of the 17 stored columns (the rest are
    byte-skipped) and projects through one compiled closure; the baseline
    decodes every column and interprets the projection expressions per row.
    """
    sql = "SELECT c03, c11 FROM wide"
    before, after = read_path_pair["before"], read_path_pair["after"]
    assert before.execute(sql).rows == after.execute(sql).rows
    plan = after.planner.plan_physical(
        after.prepare(sql).statement)
    assert plan.base.needed_columns == ("c03", "c11")
    repeats = max(5, min(100, 100_000 // max(PERF_ROWS, 1)))
    before_ops = _throughput(before, sql, repeats)
    after_ops = _throughput(after, sql, repeats)
    speedup = after_ops / before_ops
    print_table(f"C3: 2-column projection over {WIDE_COLUMNS + 2} columns, "
                f"{PERF_ROWS} rows (before/after)",
                ["path", "queries/sec"],
                [("before (decode all columns)", f"{before_ops:.2f}"),
                 ("after (pruned decode, compiled projection)", f"{after_ops:.2f}"),
                 ("speedup", f"{speedup:.2f}x")])
    record_bench("c3", "wide_projection_before_after",
                 rows=PERF_ROWS, columns=WIDE_COLUMNS + 2, repeats=repeats,
                 before_ops_per_sec=round(before_ops, 2),
                 after_ops_per_sec=round(after_ops, 2),
                 speedup=round(speedup, 2))
    if PERF_ROWS >= 10_000:
        assert speedup >= 2.0


def test_c3_limit_over_index_range_does_bounded_index_work(read_path_pair):
    """Streamed index keys: LIMIT k over a range pays O(k), not O(range)."""
    db = read_path_pair["after"]
    sql = "SELECT id, score FROM events WHERE score BETWEEN 250 AND 400 LIMIT 5"
    explain = "\n".join(r[0] for r in db.execute(f"EXPLAIN {sql}").rows)
    assert "IndexRangeScan" in explain        # selective enough for the index
    index = db.catalog.index("events", "idx_score").index
    index.stats.reset()
    result = db.execute(sql)
    assert len(result.rows) == 5
    in_range = sum(1 for i in range(1, PERF_ROWS + 1)
                   if 250 <= (i * 37) % 1000 <= 400)
    print_table("C3: LIMIT 5 over an index range (streamed keys)",
                ["metric", "value"],
                [("rows in range", in_range),
                 ("index entries scanned", index.stats.entries_scanned)])
    # Only a chunk's worth of entries was pulled, not the whole range.
    assert 0 < index.stats.entries_scanned <= 64


def test_c3_join_with_limit_streams_the_probe_side(benchmark, pipeline_db):
    """LIMIT over a join stops probing early; only the build side is read fully."""
    db = pipeline_db
    sql = ("SELECT events.id, users.name FROM events "
           "JOIN users ON events.user_id = users.uid LIMIT 10")
    result = benchmark(lambda: db.execute(sql))
    assert len(result) == 10
    scans = [op for op in result.pipeline.walk() if op.label == "SeqScan"]
    by_table = {scan.scan.table: scan.stats.rows_out for scan in scans}
    print_table("C3: LIMIT 10 over a hash join",
                ["side", "rows pulled"],
                [("events (probe, streamed)", by_table["events"]),
                 ("users (build, materialized)", by_table["users"])])
    assert by_table["events"] == 10          # probe side stops early
    assert by_table["users"] == NUM_USERS    # build side fully materialized


# -- columnar segments / vectorized batch execution -----------------------------


def test_c3_columnar_wide_selective_scan_speedup(read_path_pair):
    """Columnar acceptance: ≥2x on a selective full-table scan of a wide table.

    The predicate ranges over the unindexed ``seq`` column, so every engine
    pays a full scan.  The columnar engine prunes non-overlapping segments via
    the per-segment zone maps and runs the residual as a vectorized batch
    filter over the ``seq`` vector; the row path (the previous overhaul's
    compiled SeqScan) still decodes and tests row by row.
    """
    low = PERF_ROWS // 2
    high = low + max(PERF_ROWS // 100, 9)
    sql = f"SELECT c03, c11 FROM wide WHERE seq BETWEEN {low} AND {high}"
    before = read_path_pair["before"]
    after = read_path_pair["after"]
    columnar = read_path_pair["columnar"]
    expected = sorted(before.execute(sql).rows)
    assert sorted(after.execute(sql).rows) == expected
    result = columnar.execute(sql)
    assert sorted(result.rows) == expected
    explain = "\n".join(r[0] for r in columnar.execute(f"EXPLAIN {sql}").rows)
    assert "ColumnarScan" in explain
    scan = result.pipeline.find("ColumnarScan")
    total_segments = len(columnar.table_store("wide").segments.segments)
    if PERF_ROWS >= 4096:                 # several segments → zone maps prune
        assert scan.segments_pruned > 0
    repeats = max(5, min(100, 100_000 // max(PERF_ROWS, 1)))
    row_ops = _throughput(after, sql, repeats)
    columnar_ops = _throughput(columnar, sql, repeats)
    speedup = columnar_ops / row_ops
    print_table(f"C3: selective scan of a {WIDE_COLUMNS + 2}-column table, "
                f"{PERF_ROWS} rows (row path vs columnar)",
                ["path", "queries/sec"],
                [("row path (compiled SeqScan)", f"{row_ops:.2f}"),
                 ("columnar (zone maps + batch filter)", f"{columnar_ops:.2f}"),
                 ("segments pruned", f"{scan.segments_pruned}/{total_segments}"),
                 ("speedup", f"{speedup:.2f}x")])
    record_bench("c3", "columnar_wide_selective_scan",
                 variant="columnar", rows=PERF_ROWS, columns=WIDE_COLUMNS + 2,
                 repeats=repeats, segments_pruned=scan.segments_pruned,
                 segments_total=total_segments,
                 row_ops_per_sec=round(row_ops, 2),
                 columnar_ops_per_sec=round(columnar_ops, 2),
                 speedup=round(speedup, 2))
    if PERF_ROWS >= 10_000:
        assert speedup >= 2.0


def test_c3_columnar_unindexed_equality_scan(read_path_pair):
    """Equality on an unindexed text column: batch filter over the value
    vector, no zone-map help (string min/max spans every segment)."""
    needle = PERF_ROWS // 3
    sql = f"SELECT id FROM wide WHERE c07 = 'row-{needle}-column-7-payload'"
    after = read_path_pair["after"]
    columnar = read_path_pair["columnar"]
    assert after.execute(sql).rows == columnar.execute(sql).rows == [(needle,)]
    explain = "\n".join(r[0] for r in columnar.execute(f"EXPLAIN {sql}").rows)
    assert "ColumnarScan" in explain
    repeats = max(5, min(100, 100_000 // max(PERF_ROWS, 1)))
    row_ops = _throughput(after, sql, repeats)
    columnar_ops = _throughput(columnar, sql, repeats)
    speedup = columnar_ops / row_ops
    print_table(f"C3: unindexed text equality, {PERF_ROWS} rows "
                f"(row path vs columnar)",
                ["path", "queries/sec"],
                [("row path (compiled SeqScan)", f"{row_ops:.2f}"),
                 ("columnar (vectorized filter)", f"{columnar_ops:.2f}"),
                 ("speedup", f"{speedup:.2f}x")])
    record_bench("c3", "columnar_unindexed_equality",
                 variant="columnar", rows=PERF_ROWS, repeats=repeats,
                 row_ops_per_sec=round(row_ops, 2),
                 columnar_ops_per_sec=round(columnar_ops, 2),
                 speedup=round(speedup, 2))
    if PERF_ROWS >= 10_000:
        assert speedup >= 1.0              # never slower than the row path
