"""Experiment C3 — technical challenge 3: query speed on degradable attributes.

"OLTP queries become less selective when applied to degradable attributes and
OLAP must take care of updates incurred by degradation.  This introduces the
need for indexing techniques supporting efficiently degradation."

Measured series:

* selectivity of a location point query at each accuracy level (the paper's
  "less selective" effect made concrete);
* point-query cost with a sequential scan vs the degradation-aware GT index,
  before and after the table has degraded;
* index maintenance cost of one degradation wave for B+-tree / hash / bitmap /
  GT indexes (the OLAP update-load effect);
* OLAP aggregate cost while degradation runs;
* streaming-pipeline scenarios: ``LIMIT k`` early exit (O(k) rows pulled past
  the scan), ``ORDER BY + LIMIT`` through the bounded Top-N heap, and the
  build/stream hash join.

``C3_SCAN_ROWS`` scales the pipeline scenarios (CI smoke mode uses a small
value); the structural assertions — rows pulled, heap bound — hold at any
scale.
"""

import os

import pytest

from repro import InstantDB
from repro.core.domains import build_location_tree
from repro.index.bitmap import BitmapIndex
from repro.index.btree import BPlusTreeIndex
from repro.index.gt_index import GTIndex
from repro.index.hashindex import HashIndex
from repro.workloads import LocationTraceGenerator

from .conftest import build_engine, load_trace, print_table

NUM_EVENTS = 200
SCAN_ROWS = int(os.environ.get("C3_SCAN_ROWS", "2000"))
NUM_USERS = 50


@pytest.fixture(scope="module")
def degraded_db():
    db = build_engine(with_indexes=True)
    load_trace(db, NUM_EVENTS, interval=30.0, seed=51)
    db.advance_time(hours=2)          # locations now at city level
    return db


def test_c3_selectivity_per_accuracy_level(benchmark, degraded_db):
    """Result cardinality of a location equality query at each accuracy level."""
    db = degraded_db
    tree = build_location_tree()
    queries = [("city", "Paris"), ("region", "Ile-de-France"), ("country", "France")]

    def measure():
        rows = []
        for level_name, value in queries:
            db.execute(f"DECLARE PURPOSE probe_{level_name} SET ACCURACY LEVEL "
                       f"{level_name} FOR person.location")
            result = db.execute(
                f"SELECT COUNT(*) AS n FROM person WHERE location = '{value}'",
                purpose=f"probe_{level_name}")
            rows.append((level_name, value, result.rows[0][0]))
        return rows

    rows = benchmark(measure)
    total = db.row_count("person")
    print_table("C3: selectivity of a location point query per accuracy level",
                ["accuracy level", "predicate value", f"matching rows (of {total})"],
                rows)
    counts = [count for _level, _value, count in rows]
    # Shape: the coarser the accuracy, the less selective the predicate.
    assert counts == sorted(counts)
    assert counts[0] < counts[-1]


def test_c3_point_query_seqscan(benchmark, degraded_db):
    db = degraded_db
    result = benchmark(lambda: db.execute(
        "SELECT id FROM person WHERE location = 'Paris' AND id > 0", purpose="service"))
    assert len(result) > 0


def test_c3_point_query_gt_index(benchmark, degraded_db):
    db = degraded_db
    explain = db.execute("EXPLAIN SELECT id FROM person WHERE location = 'Paris'",
                         purpose="service")
    assert "GTIndexScan" in explain.rows[0][0]
    result = benchmark(lambda: db.execute(
        "SELECT id FROM person WHERE location = 'Paris'", purpose="service"))
    assert len(result) > 0


def test_c3_index_maintenance_cost_of_degradation(benchmark):
    """Entries moved / structures touched when one degradation wave hits each index."""
    tree = build_location_tree()
    generator = LocationTraceGenerator(num_users=40, seed=53)
    events = [generator.event_at(float(i)) for i in range(500)]

    def run():
        indexes = {
            "btree": BPlusTreeIndex("btree"),
            "hash": HashIndex("hash"),
            "bitmap": BitmapIndex("bitmap"),
            "gt": GTIndex("gt", tree),
        }
        for row_key, event in enumerate(events):
            for name, index in indexes.items():
                if name == "gt":
                    index.insert_at(event.address, 0, row_key)
                else:
                    index.insert(event.address, row_key)
        # One degradation wave: every address becomes its city.
        for row_key, event in enumerate(events):
            city = tree.generalize(event.address, 1)
            for name, index in indexes.items():
                if name == "gt":
                    index.degrade_entry(event.address, 0, city, 1, row_key)
                else:
                    index.update(event.address, city, row_key)
        return {name: index.stats.updates for name, index in indexes.items()}

    updates = benchmark(run)
    print_table("C3: index maintenance for one degradation wave (500 tuples)",
                ["index", "entry moves"],
                [(name, count) for name, count in updates.items()])
    assert all(count == 500 for count in updates.values())


def test_c3_gt_bulk_degradation_beats_per_entry(benchmark):
    """The GT index can degrade whole buckets instead of per-row updates."""
    tree = build_location_tree()
    generator = LocationTraceGenerator(num_users=40, seed=55)
    events = [generator.event_at(float(i)) for i in range(500)]

    def run():
        index = GTIndex("gt", tree)
        for row_key, event in enumerate(events):
            index.insert_at(event.address, 0, row_key)
        moved = 0
        operations = 0
        for address in list(index.values_at_level(0)):
            moved += index.degrade_bucket(address, 0, 1)
            operations += 1
        return moved, operations

    moved, operations = benchmark(run)
    print_table("C3: GT bulk degradation (bucket moves instead of row updates)",
                ["metric", "value"],
                [("postings degraded", moved), ("bucket operations", operations)])
    assert moved == 500
    # Far fewer structural operations than per-row updates.
    assert operations < 500 / 2


def test_c3_olap_aggregate_during_degradation(benchmark, degraded_db):
    """Country-level aggregate while the table sits mid-lifecycle."""
    db = degraded_db
    result = benchmark(lambda: db.execute(
        "SELECT location, COUNT(*) AS events, AVG(salary) AS avg_salary "
        "FROM person GROUP BY location ORDER BY location", purpose="statistics"))
    assert len(result) >= 2
    assert sum(row[1] for row in result.rows) == db.row_count("person")


# -- streaming-pipeline scenarios (Volcano operators) ---------------------------


@pytest.fixture(scope="module")
def pipeline_db():
    """A stable (non-degradable) fact/dimension pair at C3_SCAN_ROWS scale."""
    db = InstantDB()
    db.execute("CREATE TABLE events (id INT PRIMARY KEY, user_id INT, score INT)")
    db.executemany("INSERT INTO events VALUES (?, ?, ?)",
                   [(i, i % NUM_USERS, (i * 37) % 1000)
                    for i in range(1, SCAN_ROWS + 1)])
    db.execute("CREATE TABLE users (uid INT PRIMARY KEY, name TEXT)")
    db.executemany("INSERT INTO users VALUES (?, ?)",
                   [(u, f"user-{u}") for u in range(NUM_USERS)])
    return db


def test_c3_limit_early_exit(benchmark, pipeline_db):
    """LIMIT k stops the whole pipeline after k rows: O(k) post-scan work."""
    db = pipeline_db
    result = benchmark(lambda: db.execute("SELECT id FROM events LIMIT 10"))
    assert len(result) == 10
    scan = result.pipeline.find("SeqScan")
    print_table("C3: LIMIT 10 early exit",
                ["metric", "value"],
                [("table rows", SCAN_ROWS),
                 ("rows pulled past the scan", scan.stats.rows_out)])
    # The scan produced exactly what Limit pulled, not the whole table.
    assert scan.stats.rows_out == 10


def test_c3_topn_bounded_heap(benchmark, pipeline_db):
    """ORDER BY + LIMIT keeps a heap of n rows instead of sorting the table."""
    db = pipeline_db
    sql = "SELECT id, score FROM events ORDER BY score DESC, id ASC LIMIT 10"
    result = benchmark(lambda: db.execute(sql))
    topn = result.pipeline.find("TopN")
    assert topn is not None and topn.max_held == 10
    full = db.execute("SELECT id, score FROM events ORDER BY score DESC, id ASC")
    assert result.rows == full.rows[:10]
    print_table("C3: Top-N heap vs full sort",
                ["metric", "value"],
                [("rows consumed", SCAN_ROWS),
                 ("heap high-water mark", topn.max_held)])


def test_c3_hash_join_build_and_stream(benchmark, pipeline_db):
    """Equi-join: build the dimension side once, stream the fact side."""
    db = pipeline_db
    sql = ("SELECT events.id, users.name FROM events "
           "JOIN users ON events.user_id = users.uid")
    result = benchmark(lambda: db.execute(sql))
    assert len(result) == SCAN_ROWS
    join = result.pipeline.find("HashJoin")
    assert join is not None and join.stats.rows_out == SCAN_ROWS


def test_c3_join_with_limit_streams_the_probe_side(benchmark, pipeline_db):
    """LIMIT over a join stops probing early; only the build side is read fully."""
    db = pipeline_db
    sql = ("SELECT events.id, users.name FROM events "
           "JOIN users ON events.user_id = users.uid LIMIT 10")
    result = benchmark(lambda: db.execute(sql))
    assert len(result) == 10
    scans = [op for op in result.pipeline.walk() if op.label == "SeqScan"]
    by_table = {scan.scan.table: scan.stats.rows_out for scan in scans}
    print_table("C3: LIMIT 10 over a hash join",
                ["side", "rows pulled"],
                [("events (probe, streamed)", by_table["events"]),
                 ("users (build, materialized)", by_table["users"])])
    assert by_table["events"] == 10          # probe side stops early
    assert by_table["users"] == NUM_USERS    # build side fully materialized
