"""Benchmark harness reproducing every figure/claim/challenge experiment (DESIGN.md §4)."""
