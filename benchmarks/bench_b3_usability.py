"""Experiment B3 — claimed benefit 3: usability vs anonymization and retention.

"Compared to data anonymization, data degradation ... keep[s] the identity of
the donor intact.  Compared to data retention, degradation steps are defined
according to the targeted application purposes."

Three systems receive the same location trace and answer the same two
application workloads one week after collection:

* a user-centric service workload ("show this user's recent events") that
  needs the donor identity and city-level locations;
* a statistics workload (events per country) that only needs coarse locations.

Systems: InstantDB degradation (Fig. 2 policy), k-anonymized publication
(k = 5, identity suppressed), and limited retention with a 1-day limit (data
already deleted after a week).  Reported: answerable fraction of each workload
and the accuracy of the statistics.
"""

from collections import Counter

import pytest

from repro.baselines import KAnonymizer, LimitedRetentionStore
from repro.core.clock import DAY
from repro.core.domains import build_location_tree
from repro.core.values import SUPPRESSED
from repro.workloads import LocationTraceGenerator

from .conftest import build_engine, print_table

NUM_EVENTS = 300
EVENT_INTERVAL = 600.0
K = 5
RETENTION_LIMIT = DAY


@pytest.fixture(scope="module")
def world():
    db = build_engine()
    tree = build_location_tree()
    generator = LocationTraceGenerator(num_users=30, seed=29)
    events = generator.events(NUM_EVENTS, interval=EVENT_INTERVAL)
    retention = LimitedRetentionStore(RETENTION_LIMIT)
    published_rows = []
    for index, event in enumerate(events, start=1):
        db.clock.advance_to(event.timestamp)
        row = event.as_row()
        row["id"] = index
        db.insert_row("person", row)
        retention.insert(row, now=event.timestamp)
        published_rows.append({"user_id": event.user_id, "location": event.address})
    anonymizer = KAnonymizer({"location": tree}, identifier_columns=["user_id"])
    anonymized = anonymizer.anonymize(published_rows, k=K)
    db.advance_time(days=7)          # one week after collection
    return db, retention, anonymized, events, tree


def test_b3_user_centric_service(benchmark, world):
    """Fraction of per-user history queries still answerable one week later.

    One week after collection the Fig. 2 policy has degraded locations to the
    region level, so the user-facing purpose for this horizon asks for regions.
    """
    db, retention, anonymized, events, _tree = world
    user_ids = sorted({event.user_id for event in events})
    now = db.now()
    db.execute("DECLARE PURPOSE service_week SET ACCURACY LEVEL region "
               "FOR person.location")

    def measure():
        degraded_answerable = 0
        for user_id in user_ids:
            result = db.execute(
                f"SELECT location FROM person WHERE user_id = {user_id}",
                purpose="service_week")
            if len(result) > 0:
                degraded_answerable += 1
        retention_answerable = sum(
            1 for user_id in user_ids
            if retention.select(lambda values, uid=user_id: values["user_id"] == uid,
                                now=now)
        )
        # The anonymized publication has no user linkage at all.
        anonym_answerable = 0 if anonymized.rows and \
            all(row["user_id"] is SUPPRESSED for row in anonymized.rows) else len(user_ids)
        return degraded_answerable, retention_answerable, anonym_answerable

    degraded, retained, anonymized_count = benchmark(measure)
    total = len({event.user_id for event in events})
    print_table("B3: user-centric queries answerable one week after collection",
                ["system", "users with answerable history", "out of"],
                [("InstantDB degradation (region level)", degraded, total),
                 ("k-anonymized publication (k=5)", anonymized_count, total),
                 (f"limited retention (1 day)", retained, total)])
    # Shape: degradation keeps user-oriented services possible; anonymization
    # destroys the linkage; 1-day retention has already deleted the data.
    assert degraded == total
    assert anonymized_count == 0
    assert retained == 0


def test_b3_statistics_accuracy(benchmark, world):
    """Events-per-country statistics: degradation matches ground truth, the
    k-anonymized data may be coarser, retention has nothing left."""
    db, retention, anonymized, events, tree = world
    truth = Counter(event.country for event in events)
    now = db.now()

    def measure():
        degraded = dict(db.execute(
            "SELECT location, COUNT(*) AS n FROM person GROUP BY location",
            purpose="statistics").rows)
        anonym = Counter()
        for row in anonymized.rows:
            value = row["location"]
            if value is SUPPRESSED:
                anonym["<suppressed>"] += 1
            else:
                level = anonymized.levels["location"]
                country = tree.generalize(value, 3, from_level=level) \
                    if level <= 3 else "<suppressed>"
                anonym[country] += 1
        retained = Counter(
            tree.generalize(row.values["location"], 3)
            for row in retention.rows(now=now))
        return degraded, dict(anonym), dict(retained)

    degraded, anonym, retained = benchmark(measure)
    rows = []
    for country in sorted(truth):
        rows.append((country, truth[country], degraded.get(country, 0),
                     anonym.get(country, 0), retained.get(country, 0)))
    print_table("B3: events per country, one week after collection",
                ["country", "ground truth", "degradation", "k-anonymity", "retention 1 day"],
                rows)
    # Shape: degradation reproduces the ground-truth distribution exactly;
    # retention lost everything; anonymization retains counts only if its
    # generalization stayed at or below country level.
    assert degraded == dict(truth)
    assert sum(retained.values()) == 0
    assert sum(anonym.values()) == NUM_EVENTS


def test_b3_information_loss_summary(benchmark, world):
    """Scalar summary: information loss of each approach for the two workloads."""
    db, _retention, anonymized, events, tree = world
    anonymizer = KAnonymizer({"location": tree}, identifier_columns=["user_id"])

    def measure():
        degradation_level = 2          # region level serves the week-old service purpose
        degradation_loss = degradation_level / tree.max_level
        anonymization_loss = anonymizer.information_loss(anonymized.levels)
        return degradation_loss, anonymization_loss

    degradation_loss, anonymization_loss = benchmark(measure)
    print_table("B3: normalized generalization height (0 = accurate, 1 = suppressed)",
                ["system", "information loss", "identity preserved"],
                [("InstantDB degradation @service (region)", f"{degradation_loss:.2f}", "yes"),
                 (f"k-anonymity (k={K})", f"{anonymization_loss:.2f}", "no"),
                 ("limited retention (past its limit)", "1.00", "n/a")])
    assert degradation_loss <= anonymization_loss or anonymization_loss == 0.0
