"""Experiment A1 — ablation of the paper's future-work extensions.

The paper's conclusion sketches three relaxations of its simplifying
assumptions: per-user ("paranoid") life cycle policies, event-triggered
transitions, and richer query semantics.  This ablation quantifies what the
first two change relative to the uniform timed policy of the main experiments:

* exposure: how much earlier a paranoid user's accurate data disappears;
* engine cost: extra scheduler/bookkeeping work caused by heterogeneous
  policies and by event firing.
"""

import pytest

from repro import AttributeLCP
from repro.core.clock import DAY, HOUR, MINUTE
from repro.core.domains import build_location_tree
from repro.core.schema import Column, TableSchema
from repro.engine import InstantDB
from repro.privacy.exposure import accurate_lifetime_of_policy
from repro.workloads import LocationTraceGenerator

from .conftest import print_table

NUM_EVENTS = 120
PARANOID_SHARE = 0.25


def build_visits_db() -> InstantDB:
    db = InstantDB()
    location = db.register_domain(build_location_tree())
    db.register_policy(AttributeLCP(
        location, transitions=["1 hour", "1 day", "1 month", "3 months"],
        name="location_lcp"))
    schema = TableSchema("visits", [
        Column("id", "INT", primary_key=True),
        Column("user_id", "INT"),
        Column("location", "TEXT", degradable=True, domain="location",
               policy="location_lcp"),
    ])
    db.create_table(schema, selector_column="user_id")
    db.execute("DECLARE PURPOSE exact SET ACCURACY LEVEL address FOR visits.location")
    db.execute("DECLARE PURPOSE city SET ACCURACY LEVEL city FOR visits.location")
    return db


def load_visits(db: InstantDB, paranoid_users: set, strict: AttributeLCP) -> list:
    generator = LocationTraceGenerator(num_users=20, seed=61)
    for user in paranoid_users:
        db.register_user_policy("visits", user, {"location": strict})
    events = generator.events(NUM_EVENTS, interval=60.0)
    for index, event in enumerate(events, start=1):
        db.clock.advance_to(event.timestamp)
        db.insert_row("visits", {"id": index, "user_id": event.user_id,
                                 "location": event.address})
    return events


def test_a1_per_user_policy_exposure(benchmark):
    """Accurate-data exposure of paranoid users vs default users over time."""
    location = build_location_tree()
    strict = AttributeLCP(location, transitions=["5 min", "30 min", "2 hours", "1 day"],
                          name="paranoid_lcp")
    paranoid_users = set(range(1, int(20 * PARANOID_SHARE) + 1))

    def run():
        db = build_visits_db()
        events = load_visits(db, paranoid_users, strict)
        db.advance_time(minutes=30)
        exact = db.execute("SELECT user_id FROM visits", purpose="exact").rows
        exact_users = {user for (user,) in exact}
        paranoid_exposed = len(exact_users & paranoid_users)
        default_exposed = len(exact_users - paranoid_users)
        inserted_paranoid = sum(1 for e in events if e.user_id in paranoid_users)
        return paranoid_exposed, default_exposed, inserted_paranoid

    paranoid_exposed, default_exposed, inserted_paranoid = benchmark(run)
    print_table("A1: users with accurate locations exposed 30 min after the last insert",
                ["population", "users still exposed"],
                [("paranoid users (5-min policy)", paranoid_exposed),
                 ("default users (1-hour policy)", default_exposed)])
    assert inserted_paranoid > 0
    # Shape: the stricter per-user policy shrinks the exposed population.
    assert paranoid_exposed <= default_exposed
    assert default_exposed > 0


def test_a1_per_user_policy_overhead(benchmark):
    """Scheduler work with uniform vs heterogeneous (per-user) policies."""
    location = build_location_tree()
    strict = AttributeLCP(location, transitions=["5 min", "30 min", "2 hours", "1 day"],
                          name="paranoid_lcp")

    def run(heterogeneous: bool):
        db = build_visits_db()
        load_visits(db, set(range(1, 6)) if heterogeneous else set(), strict)
        db.advance_time(days=2)
        return db.stats.degradation_steps_applied

    uniform_steps = run(False)
    heterogeneous_steps = run(True)
    benchmark(lambda: run(True))
    print_table("A1: degradation steps applied within two days",
                ["configuration", "steps"],
                [("uniform policy (paper's assumption)", uniform_steps),
                 ("per-user policies (25% paranoid)", heterogeneous_steps)])
    # Shape: stricter per-user policies front-load extra degradation work.
    assert heterogeneous_steps >= uniform_steps


def test_a1_event_triggered_transitions(benchmark):
    """Timed-only policy vs a policy whose final suppression waits for an event."""
    location = build_location_tree()

    def run():
        db = InstantDB()
        tree = db.register_domain(build_location_tree())
        db.register_policy(AttributeLCP(
            tree, states=[0, 1, 4], transitions=["1 hour", {"event": "case_closed"}],
            name="event_lcp"))
        db.execute("CREATE TABLE sightings (id INT PRIMARY KEY, "
                   "location TEXT DEGRADABLE DOMAIN location POLICY event_lcp)")
        generator = LocationTraceGenerator(num_users=10, seed=67)
        for index, event in enumerate(generator.events(60, interval=60.0), start=1):
            db.clock.advance_to(event.timestamp)
            db.insert_row("sightings", {"id": index, "location": event.address})
        db.advance_time(days=30)
        rows_before_event = db.row_count("sightings")
        released = db.fire_event("case_closed")
        return rows_before_event, len(released), db.row_count("sightings")

    before, released, after = benchmark(run)
    print_table("A1: event-triggered final suppression",
                ["metric", "value"],
                [("rows held while the event is pending (30 days)", before),
                 ("transitions released by the event", released),
                 ("rows remaining after the event", after)])
    # Shape: the event gate holds every tuple, then releases all of them at once.
    assert before == 60
    assert released == 60
    assert after == 0


def test_a1_policy_strictness_sweep(benchmark, location_policy):
    """Accurate-lifetime sweep: how the first-delay choice trades privacy for utility."""
    location = build_location_tree()
    variants = [
        ("paranoid (5 min)", ["5 min", "30 min", "2 hours", "1 day"]),
        ("paper Fig. 2 (1 hour)", ["1 hour", "1 day", "1 month", "3 months"]),
        ("lenient (1 day)", ["1 day", "1 week", "6 months", "1 year"]),
    ]

    def compute():
        rows = []
        for name, transitions in variants:
            policy = AttributeLCP(location, transitions=transitions, name=name)
            rows.append((name, accurate_lifetime_of_policy(policy) / MINUTE,
                         policy.total_lifetime / DAY))
        return rows

    rows = benchmark(compute)
    print_table("A1: policy strictness sweep",
                ["policy", "accurate window (minutes)", "total lifetime (days)"],
                [(name, f"{window:.0f}", f"{lifetime:.0f}") for name, window, lifetime in rows])
    windows = [window for _name, window, _lifetime in rows]
    assert windows == sorted(windows)
