"""Experiment C6 — concurrent serving: QPS and tail latency vs client count.

The serving subsystem multiplexes many network clients over the lock-based
single-writer engine while the degradation daemon keeps firing.  This
experiment drives a mixed read/write workload (INSERT + commit, then a
purpose-scoped SELECT) from 1, 4 and 16 concurrent client connections
against a live server, with a background *expiry wave* thread advancing the
simulated clock through the engine executor the whole time — the paper's
timely-degradation guarantee staying active under network load.

Measured series per client count: aggregate statements/second, client-side
p50/p99 statement latency, lock-conflict aborts observed (and retried), and
the server's own latency quantiles from its metrics window.

Assertions are structural only (every operation completes, conflicts surface
as typed ``TransactionAborted``, the server serves all sessions) so CI
timing noise cannot fail the job; set ``C6_OPS`` to shrink the workload for
smoke runs.
"""

import os
import threading
import time

from repro.client import connect
from repro.core.errors import TransactionAborted
from repro.server import ServerThread

from .conftest import build_engine, print_table, record_bench

#: Operations per client; override with C6_OPS for CI smoke runs.
OPS_PER_CLIENT = int(os.environ.get("C6_OPS", "40"))
CLIENT_COUNTS = [int(n) for n in
                 os.environ.get("C6_CLIENTS", "1,4,16").split(",")]
WAVE_INTERVAL_S = float(os.environ.get("C6_WAVE_MS", "5")) / 1000.0

PURPOSE_SQL = ("DECLARE PURPOSE c6 SET ACCURACY LEVEL city "
               "FOR person.location")


def _quantile(samples, fraction):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def _client_worker(address, worker_id, ops, latencies, aborts, errors):
    try:
        conn = connect(*address, purpose="c6")
        for index in range(ops):
            row_id = worker_id * 100_000 + index
            started = time.perf_counter()
            while True:
                try:
                    conn.execute(
                        "INSERT INTO person (id, location) VALUES (?, ?)",
                        (row_id, "1 Main Street, Paris"))
                    conn.commit()
                    break
                except TransactionAborted:
                    aborts.append(1)
                    conn.rollback()
                    time.sleep(0.0005)
            while True:
                try:
                    conn.execute("SELECT COUNT(*) AS n FROM person "
                                 "WHERE id = ?", (row_id,)).fetchall()
                    conn.commit()
                    break
                except TransactionAborted:
                    aborts.append(1)
                    conn.rollback()
                    time.sleep(0.0005)
            latencies.append(time.perf_counter() - started)
        conn.close()
    except Exception as error:                  # pragma: no cover
        errors.append(error)


def _run_scenario(num_clients):
    engine = build_engine()
    engine.execute(PURPOSE_SQL)
    server = ServerThread(engine, max_sessions=num_clients + 4).start()
    latencies, aborts, errors = [], [], []
    stop_waves = threading.Event()

    def wave_worker():
        # every wave runs on the engine executor, serialized with statements
        while not stop_waves.is_set():
            server.submit(lambda: engine.advance_time(minutes=30))
            time.sleep(WAVE_INTERVAL_S)

    waves = threading.Thread(target=wave_worker)
    clients = [threading.Thread(target=_client_worker,
                                args=(server.address, n, OPS_PER_CLIENT,
                                      latencies, aborts, errors))
               for n in range(num_clients)]
    waves.start()
    started = time.perf_counter()
    for thread in clients:
        thread.start()
    for thread in clients:
        thread.join(timeout=300)
    elapsed = time.perf_counter() - started
    stop_waves.set()
    waves.join(timeout=10)
    snapshot = server.metrics()
    server.stop(drain=False)

    assert errors == [], errors
    assert len(latencies) == num_clients * OPS_PER_CLIENT
    assert snapshot["sessions_opened"] >= num_clients
    # each loop iteration is 2 statements + commit frames; the server must
    # have recorded at least the statements
    assert snapshot["statements"] >= 2 * num_clients * OPS_PER_CLIENT

    total_ops = len(latencies) * 2              # statements per iteration
    return {
        "clients": num_clients,
        "qps": round(total_ops / elapsed, 1),
        "p50_ms": round(_quantile(latencies, 0.50) * 1000, 3),
        "p99_ms": round(_quantile(latencies, 0.99) * 1000, 3),
        "aborts_retried": len(aborts),
        "server_p50_ms": round((snapshot["latency_p50"] or 0) * 1000, 3),
        "server_p99_ms": round((snapshot["latency_p99"] or 0) * 1000, 3),
        "expiry_waves": True,
    }


def test_concurrent_serving_qps_and_tail_latency():
    results = [_run_scenario(n) for n in CLIENT_COUNTS]
    for result in results:
        record_bench("c6", f"clients_{result['clients']}",
                     **{k: v for k, v in result.items() if k != "clients"})
    print_table(
        "C6: mixed read/write serving under live expiry waves "
        f"({OPS_PER_CLIENT} ops/client)",
        ["clients", "qps", "p50 ms", "p99 ms", "aborts", "srv p99 ms"],
        [[r["clients"], r["qps"], r["p50_ms"], r["p99_ms"],
          r["aborts_retried"], r["server_p99_ms"]] for r in results],
    )
    # tail latency is well-defined and ordered in every scenario
    for result in results:
        assert result["p99_ms"] >= result["p50_ms"]
