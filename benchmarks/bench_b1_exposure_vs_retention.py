"""Experiment B1 — claimed benefit 1: exposure to disclosure vs limited retention.

"The amount of accurate personal information exposed to disclosure ... is
always less than with a traditional data retention principle."

A location trace is loaded both into InstantDB (Fig. 2 policy: accurate for one
hour) and into limited-retention baselines with 1-day, 1-week, 1-month and
1-year limits.  Reported series: the number of accurate tuples an attacker
would capture with a single snapshot, and the accumulated accurate
tuple-hours, per system.
"""

import pytest

from repro.baselines import LimitedRetentionStore, TraditionalStore
from repro.core.clock import DAY, HOUR, MONTH, WEEK, YEAR
from repro.privacy.exposure import (
    accurate_lifetime_of_policy,
    engine_snapshot,
    exposure_volume_analytic,
    retention_vs_degradation_ratio,
)
from repro.workloads import LocationTraceGenerator

from .conftest import build_engine, load_trace, print_table

NUM_EVENTS = 400
EVENT_INTERVAL = 300.0          # one event every 5 minutes
RETENTION_LIMITS = [("1 day", DAY), ("1 week", WEEK), ("1 month", MONTH), ("1 year", YEAR)]


@pytest.fixture(scope="module")
def loaded():
    db = build_engine()
    generator = LocationTraceGenerator(num_users=50, seed=21)
    events = generator.events(NUM_EVENTS, interval=EVENT_INTERVAL)
    baselines = {name: LimitedRetentionStore(limit) for name, limit in RETENTION_LIMITS}
    baselines["traditional"] = TraditionalStore()
    for index, event in enumerate(events, start=1):
        db.clock.advance_to(event.timestamp)
        row = event.as_row()
        row["id"] = index
        db.insert_row("person", row)
        for store in baselines.values():
            store.insert(row, now=event.timestamp)
    return db, baselines, [event.timestamp for event in events]


def test_b1_snapshot_exposure(benchmark, loaded):
    """Accurate tuples captured by a single snapshot attack right after collection."""
    db, baselines, insert_times = loaded
    now = db.now()

    def measure():
        degradation_exposed = engine_snapshot(db, "person", "location").exposed(0)
        rows = [("InstantDB degradation (1 h accurate)", degradation_exposed)]
        for name, store in baselines.items():
            label = "no retention limit (traditional)" if name == "traditional" \
                else f"limited retention {name}"
            rows.append((label, len(store.accurate_rows(now=now))))
        return rows

    rows = benchmark(measure)
    print_table("B1: accurate tuples exposed to a snapshot attacker",
                ["system", "accurate tuples exposed"], rows)
    exposures = dict(rows)
    degradation = exposures["InstantDB degradation (1 h accurate)"]
    # Shape: degradation always exposes the least; retention exposure grows with
    # the limit up to the full trace for the traditional store.
    for name, _limit in RETENTION_LIMITS:
        assert degradation <= exposures[f"limited retention {name}"]
    assert exposures["no retention limit (traditional)"] == NUM_EVENTS
    assert exposures["limited retention 1 year"] == NUM_EVENTS
    assert degradation < NUM_EVENTS * 0.1


def test_b1_accurate_tuple_hours(benchmark, loaded):
    """Accumulated accurate tuple-hours (exposure volume) per system."""
    db, _baselines, _insert_times = loaded
    policy = db.catalog.policy_for("person", "location")
    lifetime = accurate_lifetime_of_policy(policy)

    def measure():
        rows = [("InstantDB degradation",
                 exposure_volume_analytic(NUM_EVENTS, lifetime) / HOUR, 1.0)]
        for name, limit in RETENTION_LIMITS:
            volume = exposure_volume_analytic(NUM_EVENTS, limit) / HOUR
            rows.append((f"limited retention {name}", volume,
                         retention_vs_degradation_ratio(limit, policy)))
        return rows

    rows = benchmark(measure)
    print_table("B1: accumulated accurate tuple-hours (analytic)",
                ["system", "accurate tuple-hours", "x worse than degradation"],
                [(name, f"{volume:.0f}", f"{ratio:.0f}x") for name, volume, ratio in rows])
    volumes = [volume for _name, volume, _ratio in rows]
    # Shape: exposure volume grows monotonically with the retention limit and
    # the 1-year limit is ~4 orders of magnitude above the 1-hour degradation.
    assert volumes == sorted(volumes)
    assert volumes[-1] / volumes[0] > 1000


def test_b1_exposure_after_degradation_settles(benchmark, loaded):
    """Once collection stops, degradation drains the exposed set to zero while
    retention keeps it fully exposed until the limit."""
    db, baselines, _insert_times = loaded
    db.advance_time(hours=3)
    now = db.now()

    def measure():
        return (engine_snapshot(db, "person", "location").exposed(0),
                len(baselines["1 week"].accurate_rows(now=now)))

    degraded_exposed, retained_exposed = benchmark(measure)
    print_table("B1: exposure three hours after the last insert",
                ["system", "accurate tuples exposed"],
                [("InstantDB degradation", degraded_exposed),
                 ("limited retention 1 week", retained_exposed)])
    assert degraded_exposed == 0
    assert retained_exposed == NUM_EVENTS
