"""Experiment F3 — Fig. 3: the tuple LCP as the product of attribute LCPs.

Reproduces the combinational view of Fig. 3 for a tuple with two degradable
attributes (location: 5 states, salary: 3 states in this configuration):
the reachable lattice, the chain of tuple states actually visited, and the
occupancy of tuple states over time.  Benchmarks the product-automaton
operations.
"""

import pytest

from repro.core.clock import DAY, HOUR, MONTH
from repro.core.lcp import AttributeLCP, TupleLCP, thaw_state

from .conftest import print_table


@pytest.fixture
def tuple_lcp(location_policy, salary_scheme):
    salary = AttributeLCP(salary_scheme, states=[0, 2, 4],
                          transitions=["2 hours", "2 days"], name="salary_lcp_3")
    return TupleLCP({"location": location_policy, "salary": salary})


def test_fig3_visited_chain(benchmark, tuple_lcp):
    """The chronological chain of tuple states (the paper's t_0 ... t_m)."""
    rows = []
    for offset, state in benchmark(tuple_lcp.transition_schedule):
        levels = thaw_state(state)
        rows.append((f"{offset:.0f}s", levels["location"], levels["salary"]))
    print_table("F3: visited tuple states (location x salary)",
                ["entered at", "location state", "salary state"], rows)
    assert rows[0][1:] == (0, 0)
    assert rows[-1][1:] == (4, 2)
    # Each visited state advances exactly one attribute by one step.
    states = [state for _offset, state in tuple_lcp.transition_schedule()]
    assert len(states) == 7
    for previous, current in zip(states, states[1:]):
        diff = sum(abs(thaw_state(current)[name] - thaw_state(previous)[name])
                   for name in ("location", "salary"))
        assert diff == 1


def test_fig3_lattice_vs_chain(benchmark, tuple_lcp):
    """The full reachable lattice of Fig. 3 versus the single visited path."""
    lattice = benchmark(tuple_lcp.reachable_states)
    visited = tuple_lcp.visited_states()
    print_table("F3: lattice vs visited chain",
                ["metric", "count"],
                [("reachable tuple states (lattice)", len(lattice)),
                 ("visited tuple states (chain)", len(visited))])
    assert len(lattice) == 5 * 3
    assert set(visited) <= set(lattice)
    assert len(visited) == 5 + 3 - 1


def test_fig3_occupancy_over_time(benchmark, tuple_lcp):
    """Tuple-state occupancy for a population inserted over one day."""
    insert_times = [index * 300.0 for index in range(500)]
    checkpoints = [HOUR, 3 * HOUR, 2 * DAY, 2 * MONTH, 8 * MONTH]

    def compute_rows():
        rows = []
        for when in checkpoints:
            occupancy = {}
            for inserted in insert_times:
                state = tuple(sorted(tuple_lcp.state_at(max(0.0, when - inserted)).items()))
                occupancy[state] = occupancy.get(state, 0) + 1
            top = sorted(occupancy.items(), key=lambda kv: kv[1], reverse=True)[:3]
            rows.append((f"t={when / HOUR:.0f}h", len(occupancy),
                         "; ".join(f"{dict(state)}x{count}" for state, count in top)))
        return rows

    rows = benchmark(compute_rows)
    print_table("F3: distinct tuple states occupied over time",
                ["checkpoint", "distinct states", "top states"], rows)
    distinct = [row[1] for row in rows]
    assert max(distinct) <= len(tuple_lcp.reachable_states())
    assert distinct[-1] == 1       # eventually everything sits in the final state


def test_fig3_product_operations_cost(benchmark, tuple_lcp):
    """Benchmark: evaluating the product automaton for a 5k-tuple population."""
    offsets = [index * 77.0 for index in range(5_000)]

    def evaluate():
        return [tuple_lcp.state_at(offset) for offset in offsets]

    states = benchmark(evaluate)
    assert len(states) == 5_000


def test_fig3_schedule_generation_cost(benchmark, tuple_lcp):
    """Benchmark: generating the full transition schedule repeatedly."""
    def build():
        return tuple_lcp.transition_schedule()

    schedule = benchmark(build)
    assert len(schedule) == 7
