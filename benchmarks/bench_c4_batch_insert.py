"""Experiment C4 — batch ingest: per-statement ``execute`` vs ``executemany``.

The PEP 249 driver's ``executemany`` is the engine's batch-insert fast path:
the INSERT is parsed once (prepared-statement cache), each parameter row is
bound against the cached AST, and the whole batch commits as one transaction
— one lock acquisition and one durable WAL flush instead of N.  This
experiment measures the speedup over the same rows ingested as N autocommit
``execute`` calls, the way every caller had to before the driver API existed.

Measured series: wall-clock time and derived rows/second for both paths, the
number of engine transactions begun, and the parse count (statement cache
misses) per path.
"""

import time

import pytest

from repro import connect

from .conftest import print_table

NUM_ROWS = 2000
SQL_CREATE = "CREATE TABLE events (id INT PRIMARY KEY, user_id INT, payload TEXT)"
SQL_INSERT = "INSERT INTO events VALUES (?, ?, ?)"


def _rows(count):
    return [(index, index % 40, f"payload-{index}") for index in range(count)]


def _ingest_per_statement(count):
    """N autocommit execute() calls: N parses (pre-cache) and N commits."""
    conn = connect()
    conn.execute(SQL_CREATE)
    conn.commit()
    db = conn.engine
    begun_before = db.transactions.stats.begun
    started = time.perf_counter()
    for params in _rows(count):
        db.execute(SQL_INSERT, params=params)
        db.statements.clear()        # model a driver with no statement cache
    elapsed = time.perf_counter() - started
    transactions = db.transactions.stats.begun - begun_before
    assert db.row_count("events") == count
    conn.close()
    return elapsed, transactions


def _ingest_executemany(count):
    """One executemany batch: one parse, one transaction, one WAL flush."""
    conn = connect()
    cur = conn.cursor()
    cur.execute(SQL_CREATE)
    conn.commit()
    db = conn.engine
    begun_before = db.transactions.stats.begun
    misses_before = db.statements.stats.misses
    started = time.perf_counter()
    cur.executemany(SQL_INSERT, _rows(count))
    conn.commit()
    elapsed = time.perf_counter() - started
    transactions = db.transactions.stats.begun - begun_before
    parses = db.statements.stats.misses - misses_before
    assert db.row_count("events") == count
    assert parses <= 1
    conn.close()
    return elapsed, transactions


def test_c4_executemany_beats_per_statement_ingest(benchmark):
    per_statement_time, per_statement_txns = _ingest_per_statement(NUM_ROWS)
    batch_time, batch_txns = _ingest_executemany(NUM_ROWS)
    benchmark(lambda: _ingest_executemany(NUM_ROWS))

    speedup = per_statement_time / batch_time if batch_time else float("inf")
    print_table(
        "C4: ingesting one batch of rows through the PEP 249 driver",
        ["path", "rows", "time (s)", "rows/s", "transactions"],
        [("execute() per row", NUM_ROWS, f"{per_statement_time:.3f}",
          f"{NUM_ROWS / per_statement_time:,.0f}", per_statement_txns),
         ("executemany()", NUM_ROWS, f"{batch_time:.3f}",
          f"{NUM_ROWS / batch_time:,.0f}", batch_txns),
         ("speedup", "", f"{speedup:.1f}x", "", "")],
    )
    # Shape: the batch path runs in one transaction and is measurably faster.
    assert batch_txns == 1
    assert per_statement_txns == NUM_ROWS
    assert batch_time < per_statement_time


def test_c4_prepared_cache_alone_helps(benchmark):
    """Even without batching, the statement cache removes repeated parses."""
    conn = connect()
    conn.execute(SQL_CREATE)
    conn.commit()
    db = conn.engine

    def ingest_cached(count=400):
        for params in _rows(count):
            db.execute("DELETE FROM events WHERE id = ?", params=(params[0],))
            db.execute(SQL_INSERT, params=params)
        return db.statements.stats.misses

    misses = benchmark(ingest_cached)
    print_table("C4: statement cache during a repeated-statement workload",
                ["metric", "value"],
                [("distinct statements parsed", misses),
                 ("cache hits", db.statements.stats.hits)])
    assert misses <= 4                      # create + insert + delete (+ slack)
    assert db.statements.stats.hits > 0
    conn.close()
