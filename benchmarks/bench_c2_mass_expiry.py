"""Experiment C2 addendum — mass expiry: batched vs per-step degradation.

The paper's C2 challenge is *timely* degradation at scale: when a retention
boundary passes, an entire ingest wave comes due at once.  This benchmark
inserts ``MASS_EXPIRY_N`` records at the same instant, lets their first
degradation step expire in one wave, and drains it twice:

* **batched** (the engine default) — one system transaction, one exclusive
  lock, one coalesced page-flush pass, one WAL scrub pass and one durable WAL
  flush per batch;
* **per-step baseline** (``batch_degradation=False``) — the original
  step-at-a-time pipeline that pays all of the above once per step.

Series reported: steps/second for both pipelines, WAL flush and page flush
counts, and the chunked-drain behaviour of the daemon's ``max_batch`` knob.

``MASS_EXPIRY_N`` (default 10000) sizes the wave; CI runs a tiny smoke wave
(the structural assertions — one WAL flush per batch, coalesced page flushes —
hold at any size and catch a silent regression to per-step application).  The
throughput ratio is only asserted for waves of at least 1000 records, where
the measurement is not noise-dominated.
"""

import os
import time

from repro import AttributeLCP, InstantDB
from repro.core.domains import _CITIES, addresses_for_city, build_location_tree

from .conftest import print_table, record_bench

#: Wave size; override with MASS_EXPIRY_N=200 for a CI smoke run.
N = int(os.environ.get("MASS_EXPIRY_N", "10000"))

#: Assert the >= 3x speedup only when the wave is big enough to time reliably.
MIN_N_FOR_RATIO = 1000

TRANSITIONS = ["1 hour", "1 day", "1 month", "3 months"]


def _build_engine(batch: bool, max_batch=None) -> InstantDB:
    db = InstantDB(batch_degradation=batch, degradation_max_batch=max_batch,
                   buffer_capacity=4096)
    location = db.register_domain(build_location_tree())
    db.register_policy(AttributeLCP(location, transitions=TRANSITIONS,
                                    name="location_lcp"))
    db.execute("CREATE TABLE trace (id INT PRIMARY KEY, location TEXT "
               "DEGRADABLE DOMAIN location POLICY location_lcp)")
    db.create_index("idx_location", "trace", "location", method="gt")
    return db


def _load_wave(db: InstantDB, count: int) -> None:
    addresses = [address for city, _region, _country in _CITIES
                 for address in addresses_for_city(city)]
    rows = [(index, addresses[index % len(addresses)])
            for index in range(1, count + 1)]
    db.executemany("INSERT INTO trace VALUES (?, ?)", rows)


def _drain_wave(db: InstantDB):
    """Advance past the first retention boundary and measure the drain."""
    steps = db.stats.degradation_steps_applied
    wal_flushes = db.wal.stats.flushed
    page_flushes = db.buffer_pool.stats.flushes
    scrub_rewrites = db.wal.stats.scrub_rewrites
    started = time.perf_counter()
    db.advance_time(hours=2)       # every record owes exactly one location step
    elapsed = time.perf_counter() - started
    return {
        "steps": db.stats.degradation_steps_applied - steps,
        "seconds": elapsed,
        "wal_flushes": db.wal.stats.flushed - wal_flushes,
        "page_flushes": db.buffer_pool.stats.flushes - page_flushes,
        "scrub_rewrites": db.wal.stats.scrub_rewrites - scrub_rewrites,
    }


def test_mass_expiry_batch_vs_per_step():
    batched_db = _build_engine(batch=True)
    _load_wave(batched_db, N)
    per_step_db = _build_engine(batch=False)
    _load_wave(per_step_db, N)

    batched = _drain_wave(batched_db)
    per_step = _drain_wave(per_step_db)

    batched_rate = batched["steps"] / max(batched["seconds"], 1e-9)
    per_step_rate = per_step["steps"] / max(per_step["seconds"], 1e-9)
    heap_pages = batched_db.table_store("trace").heap.page_count
    print_table(
        f"C2: mass expiry of a {N}-record wave (first degradation step)",
        ["pipeline", "steps", "steps/s", "WAL flushes", "page flushes",
         "scrub rewrites"],
        [("batched", batched["steps"], f"{batched_rate:,.0f}",
          batched["wal_flushes"], batched["page_flushes"], batched["scrub_rewrites"]),
         ("per-step", per_step["steps"], f"{per_step_rate:,.0f}",
          per_step["wal_flushes"], per_step["page_flushes"], per_step["scrub_rewrites"])])

    # Both pipelines apply the full wave and agree on the visible end state.
    assert batched["steps"] == N and per_step["steps"] == N
    assert batched_db.level_histogram("trace", "location") == {1: N}
    assert per_step_db.level_histogram("trace", "location") == {1: N}

    # The batch path pays one durable WAL flush and one scrub rewrite for the
    # whole wave; the per-step baseline pays one of each per step.  This is
    # the structural guard against silently regressing to per-step application.
    assert batched["wal_flushes"] == 1
    assert batched["scrub_rewrites"] == 1
    assert per_step["wal_flushes"] >= N
    assert per_step["scrub_rewrites"] >= N

    # Each dirty heap page is flushed at most once per batch.
    assert batched["page_flushes"] <= heap_pages
    assert per_step["page_flushes"] >= N

    record_bench("c2", "mass_expiry_wave",
                 variant="row", rows=N,
                 batched_steps_per_sec=round(batched_rate, 1),
                 per_step_steps_per_sec=round(per_step_rate, 1),
                 batched_wal_flushes=batched["wal_flushes"],
                 batched_seconds=round(batched["seconds"], 6))

    if N >= MIN_N_FOR_RATIO:
        assert batched_rate >= 3 * per_step_rate, (
            f"batched pipeline only {batched_rate / per_step_rate:.1f}x faster"
        )


def test_mass_expiry_columnar_wave():
    """The same wave through the columnar segment layer.

    With the trace table mirrored into columnar segments, the batch applies
    each wave as one pass per affected (segment, column, level) chunk and logs
    one ``SEGMENT_DEGRADE`` record per chunk instead of one ``DEGRADE`` record
    per row — far fewer WAL records for the same durable outcome — while
    keeping the batch pipeline's one-flush / one-scrub-pass structure.  The
    wave must cost no more than the row-path batch wave.
    """
    row_db = _build_engine(batch=True)
    _load_wave(row_db, N)
    columnar_db = _build_engine(batch=True)
    _load_wave(columnar_db, N)
    columnar_db.columnarize("trace")

    row_appended = row_db.wal.stats.appended
    row = _drain_wave(row_db)
    row_records = row_db.wal.stats.appended - row_appended

    columnar_appended = columnar_db.wal.stats.appended
    columnar = _drain_wave(columnar_db)
    columnar_records = columnar_db.wal.stats.appended - columnar_appended

    segments = columnar_db.table_store("trace").segments
    print_table(
        f"C2: {N}-record wave, row-path batch vs columnar segment chunks",
        ["pipeline", "steps", "seconds", "WAL records", "WAL flushes",
         "degrade chunks"],
        [("row batch", row["steps"], f"{row['seconds']:.4f}",
          row_records, row["wal_flushes"], "-"),
         ("columnar batch", columnar["steps"], f"{columnar['seconds']:.4f}",
          columnar_records, columnar["wal_flushes"],
          segments.stats.degrade_chunks)])

    # Same visible outcome, same durability structure as the row batch.
    assert columnar["steps"] == N
    assert columnar_db.level_histogram("trace", "location") == {1: N}
    assert columnar["wal_flushes"] == 1
    assert columnar["scrub_rewrites"] == 1

    # The wave was applied as per-segment chunks, and each chunk covers many
    # rows: the WAL carries one SEGMENT_DEGRADE record per chunk instead of
    # one DEGRADE record per row.
    assert segments.stats.degrade_chunks > 0
    assert segments.stats.degrade_chunks < max(N // 2, 2)
    assert columnar_records < row_records

    record_bench("c2", "mass_expiry_wave_columnar",
                 variant="columnar", rows=N,
                 steps_per_sec=round(columnar["steps"] /
                                     max(columnar["seconds"], 1e-9), 1),
                 wal_records=columnar_records,
                 row_path_wal_records=row_records,
                 degrade_chunks=segments.stats.degrade_chunks,
                 seconds=round(columnar["seconds"], 6),
                 row_path_seconds=round(row["seconds"], 6))

    # Columnar wave cost stays at or below the row-path batch cost (generous
    # slack: timing noise at smoke scale must not fail CI).
    if N >= MIN_N_FOR_RATIO:
        assert columnar["seconds"] <= row["seconds"] * 1.25, (
            f"columnar wave {columnar['seconds']:.4f}s vs "
            f"row batch {row['seconds']:.4f}s"
        )


def test_mass_expiry_chunked_drain():
    """The max_batch knob drains a big backlog in bounded chunks."""
    chunk = max(1, N // 4)
    db = _build_engine(batch=True, max_batch=chunk)
    _load_wave(db, N)
    drained = _drain_wave(db)
    expected_batches = -(-N // chunk)          # ceil division
    assert drained["steps"] == N
    # One durable WAL flush per chunk, not per step.
    assert drained["wal_flushes"] == expected_batches
    assert db.daemon.stats.batches >= expected_batches
    assert db.daemon.backlog() == 0
    print_table(f"C2: chunked drain (max_batch={chunk})",
                ["metric", "value"],
                [("steps applied", drained["steps"]),
                 ("chunks", expected_batches),
                 ("WAL flushes", drained["wal_flushes"])])
