"""Experiment C2 — technical challenge 2: timely, non-recoverable degradation.

"Degradation updates, as well as final removal from the database have to be
timely enforced ... The storage of degradable attributes, indexes and logs
have thus to be revisited."

Measured series: degradation-step throughput and lag for the two
non-recoverability strategies (physical rewrite vs cryptographic erasure), the
residual-plaintext forensic scan after each life-cycle stage, and the log
overhead each strategy pays.
"""

import pytest

from repro.core.clock import HOUR
from repro.privacy.forensic import scan_engine
from repro.workloads import LocationTraceGenerator

from .conftest import build_engine, load_trace, print_table

NUM_EVENTS = 120


@pytest.mark.parametrize("strategy", ["rewrite", "crypto"])
def test_c2_step_throughput(benchmark, strategy):
    """Wall-clock cost of applying one full degradation wave (N tuples x 1 step)."""
    def run():
        db = build_engine(strategy=strategy)
        db.daemon.pause()
        load_trace(db, NUM_EVENTS, interval=1.0, seed=41)
        db.daemon.resume()
        db.advance_time(hours=2)          # every tuple owes exactly one location step
        return db.stats.degradation_steps_applied

    steps = benchmark(run)
    assert steps >= NUM_EVENTS


@pytest.mark.parametrize("strategy", ["rewrite", "crypto"])
def test_c2_timeliness_lag(benchmark, strategy):
    """Lag between a step's scheduled due time and its application."""
    def run():
        db = build_engine(strategy=strategy)
        load_trace(db, NUM_EVENTS, interval=30.0, seed=43)
        # Advance in coarse ticks: steps due between ticks are applied late by
        # at most one tick, which is the lag the daemon reports.
        for _ in range(12):
            db.advance_time(minutes=30)
        stats = db.scheduler.stats
        return (stats.steps_applied, stats.mean_lag, stats.max_lag,
                stats.percentile_lag(0.95))

    steps, mean_lag, max_lag, p95 = benchmark(run)
    print_table(f"C2: degradation timeliness (strategy={strategy}, 30-min daemon ticks)",
                ["metric", "value"],
                [("steps applied", steps),
                 ("mean lag (s)", f"{mean_lag:.0f}"),
                 ("p95 lag (s)", f"{p95:.0f}"),
                 ("max lag (s)", f"{max_lag:.0f}")])
    assert steps >= NUM_EVENTS
    # Lag is bounded by the daemon tick (30 minutes).
    assert max_lag <= 30 * 60 + 1


@pytest.mark.parametrize("strategy", ["rewrite", "crypto"])
def test_c2_forensic_scan_per_stage(benchmark, strategy):
    """Residual accurate plaintext in heap + WAL + indexes after each stage."""
    db = build_engine(strategy=strategy, with_indexes=True)
    generator = LocationTraceGenerator(num_users=20, seed=45)
    events = generator.events(60, interval=60.0)
    addresses = []
    for index, event in enumerate(events, start=1):
        db.clock.advance_to(event.timestamp)
        row = event.as_row()
        row["id"] = index
        db.insert_row("person", row)
        addresses.append(event.address)

    stages = []
    initial_report = scan_engine(db, addresses, table="person")
    stages.append(("right after collection", len(initial_report.residual_values)))
    db.advance_time(hours=2)
    report_city = benchmark(lambda: scan_engine(db, addresses, table="person"))
    stages.append(("after the city step (1 h)", len(report_city.residual_values)))
    db.advance_time(days=800)
    report_final = scan_engine(db, addresses, table="person")
    stages.append(("after the full life cycle", len(report_final.residual_values)))

    print_table(f"C2: level-0 addresses still recoverable (strategy={strategy})",
                ["stage", f"residual addresses (of {len(addresses)})"], stages)
    # Shape: plaintext may exist while accurate (rewrite strategy: data pages and
    # WAL; crypto strategy: only the index keys), but after the first step and
    # after removal nothing accurate is recoverable anywhere.
    assert stages[1][1] == 0
    assert stages[2][1] == 0
    if strategy == "crypto":
        channels = {finding.channel for finding in initial_report.findings}
        assert all(channel.startswith("index:") for channel in channels)


@pytest.mark.parametrize("strategy", ["rewrite", "crypto"])
def test_c2_log_overhead(benchmark, strategy):
    """WAL maintenance each strategy pays for non-recoverability."""
    def run():
        db = build_engine(strategy=strategy)
        load_trace(db, 80, interval=1.0, seed=47)
        db.advance_time(hours=2)
        wal_stats = db.wal.stats
        return (wal_stats.appended, wal_stats.scrub_rewrites, wal_stats.scrubbed_records,
                len(db.wal))

    appended, scrub_rewrites, scrubbed_records, live_records = benchmark(run)
    print_table(f"C2: WAL overhead (strategy={strategy})",
                ["metric", "value"],
                [("records appended", appended),
                 ("scrub rewrites", scrub_rewrites),
                 ("record images scrubbed", scrubbed_records),
                 ("records in log", live_records)])
    if strategy == "rewrite":
        # The rewrite strategy must scrub the accurate insert images, but the
        # batched pipeline pays one log rewrite per degradation batch, not one
        # per step.
        assert scrubbed_records >= 80
        assert 1 <= scrub_rewrites <= 8
    else:
        # Crypto-erasure never rewrites the log for degradation steps.
        assert scrub_rewrites == 0


def test_c2_catch_up_after_downtime(benchmark):
    """A daemon that was down applies every missed step on the next tick."""
    def run():
        db = build_engine()
        load_trace(db, 60, interval=60.0, seed=49)
        db.daemon.pause()
        db.advance_time(days=2)                    # many steps become overdue
        overdue = db.daemon.backlog()
        db.daemon.resume()
        db.advance_time(seconds=1)
        return overdue, db.scheduler.stats.max_lag, db.daemon.backlog()

    overdue, max_lag, backlog_after = benchmark(run)
    print_table("C2: catch-up after daemon downtime",
                ["metric", "value"],
                [("steps overdue while down", overdue),
                 ("max lag once caught up (s)", f"{max_lag:.0f}"),
                 ("backlog after catch-up", backlog_after)])
    assert overdue > 0
    assert backlog_after == 0
    assert max_lag > 0
