"""Experiment C5 — crash recovery of the degradation schedule.

The paper's timeliness promise must survive process death: after a crash the
reopened database has to rebuild its due-queue from the WAL and apply every
step that came due while it was down.  This benchmark builds a
``RECOVERY_N``-registration schedule over an on-disk database, kills the
process at the worst moment (daemon wedged, the whole wave overdue but
unapplied), reopens, and measures:

* **recovery time** — WAL replay + schedule reconstruction, with and without
  a clean-shutdown ``SCHED_CHECKPOINT`` snapshot (snapshot recovery replays
  only the log tail);
* **post-restart degradation lag** — how far behind schedule the overdue
  steps are by the time the catch-up drain has applied them (they drain in
  batches through the normal PR-2 pipeline: one system transaction, one WAL
  flush, one scrub pass per batch).

``RECOVERY_N`` (default 10000) sizes the queue; CI smoke-runs a small one —
the structural assertions (every registration restored, every overdue step
applied exactly once, bounded WAL flush counts) hold at any size.
"""

import os
import time

from repro import AttributeLCP, InstantDB
from repro.core.clock import HOUR
from repro.core.domains import _CITIES, addresses_for_city, build_location_tree

from .conftest import print_table

#: Queue size; override with RECOVERY_N=200 for a CI smoke run.
N = int(os.environ.get("RECOVERY_N", "10000"))

TRANSITIONS = ["1 hour", "1 day", "1 month", "3 months"]


def _build_engine(data_dir) -> InstantDB:
    db = InstantDB(data_dir=str(data_dir), buffer_capacity=4096)
    location = db.register_domain(build_location_tree())
    db.register_policy(AttributeLCP(location, transitions=TRANSITIONS,
                                    name="location_lcp"))
    db.execute("CREATE TABLE trace (id INT PRIMARY KEY, location TEXT "
               "DEGRADABLE DOMAIN location POLICY location_lcp)")
    return db


def _load_queue(db: InstantDB, count: int) -> None:
    addresses = [address for city, _region, _country in _CITIES
                 for address in addresses_for_city(city)]
    rows = [(index, addresses[index % len(addresses)])
            for index in range(1, count + 1)]
    db.executemany("INSERT INTO trace VALUES (?, ?)", rows)


def test_crash_recovery_time_and_postrestart_lag(tmp_path):
    """Unclean shutdown with the whole wave overdue: reopen, replay, drain."""
    db = _build_engine(tmp_path)
    _load_queue(db, N)
    db.daemon.pause()                  # the daemon dies first...
    db.advance_time(hours=2)           # ...the full wave comes due, unapplied
    db.execute("INSERT INTO trace VALUES (0, '9 Rue de la Paix, Paris')")
    assert db.daemon.backlog() == N
    del db                             # crash: no checkpoint, no close

    started = time.perf_counter()
    db2 = _build_engine(tmp_path)
    reopen_seconds = time.perf_counter() - started

    started = time.perf_counter()
    report = db2.recover(drain=False)
    replay_seconds = time.perf_counter() - started

    wal_flushes = db2.wal.stats.flushed
    started = time.perf_counter()
    applied = db2.daemon.catch_up()
    drain_seconds = time.perf_counter() - started
    drain_flushes = db2.wal.stats.flushed - wal_flushes

    lags = db2.scheduler.stats
    print_table(
        f"C5: recovery of a {N}-registration queue after an unclean shutdown",
        ["phase", "seconds", "rate"],
        [("reopen (DDL + WAL load)", f"{reopen_seconds:.3f}", ""),
         ("replay (redo/undo + schedule)", f"{replay_seconds:.3f}",
          f"{(N + 1) / max(replay_seconds, 1e-9):,.0f} reg/s"),
         ("catch-up drain (batched)", f"{drain_seconds:.3f}",
          f"{len(applied) / max(drain_seconds, 1e-9):,.0f} steps/s")])
    print_table(
        "C5: post-restart degradation lag (wall time behind schedule)",
        ["metric", "value"],
        [("steps overdue at restart", len(applied)),
         ("scheduled lag (due -> applied, sim time)", f"{lags.max_lag:.0f} s"),
         ("WAL flushes during drain", drain_flushes)])

    # Structural guards: full reconstruction, exactly-once application.
    assert report.registrations == N + 1
    assert report.schedule.registrations_dropped == 0
    assert len(applied) == N
    assert db2.stats.degradation_steps_applied == N
    assert db2.daemon.backlog() == 0
    assert db2.level_histogram("trace", "location") == {1: N, 0: 1}
    # The drain went through the batch pipeline: one durable flush per batch
    # (single table, unbounded max_batch -> one batch), not one per step.
    assert drain_flushes <= 2
    # Overdue steps were an hour behind schedule (due at 1h, applied at 2h).
    assert lags.max_lag >= HOUR


def test_snapshot_recovery_replays_only_the_tail(tmp_path):
    """A clean shutdown's snapshot makes recovery independent of history."""
    db = _build_engine(tmp_path)
    _load_queue(db, N)
    db.advance_time(hours=2)           # first wave applies normally
    db.close()                         # checkpoint + SCHED_CHECKPOINT

    started = time.perf_counter()
    db2 = _build_engine(tmp_path)
    report = db2.recover()
    seconds = time.perf_counter() - started

    print_table(
        f"C5: recovery from a clean shutdown ({N} registrations)",
        ["metric", "value"],
        [("recovery seconds", f"{seconds:.3f}"),
         ("restored from snapshot", report.schedule.snapshot_restored),
         ("replayed from tail", report.schedule.registrations_replayed),
         ("overdue at restart", report.overdue_steps_applied)])

    assert report.schedule.snapshot_restored == N
    assert report.schedule.registrations_replayed == 0
    assert report.schedule.steps_replayed == 0
    assert report.overdue_steps_applied == 0
    assert db2.level_histogram("trace", "location") == {1: N}
    # The queue cadence survived: next wave due exactly one day after the
    # first one fired.
    assert db2.scheduler.peek_next_due() == HOUR + 24 * HOUR
