"""Experiment C7 — the GDPR-retention scenario suite as a macro-benchmark.

One seeded inclusion-platform workload (mixed point reads, range scans,
joins, aggregates, writes, live expiry waves and forensic scans) replays
against every engine variant — interpreted, compiled, columnar, remote —
with the differential oracle armed: besides QPS and tail latency per
variant, the run *proves* all four variants returned identical results and
the retention invariant held after every wave.

Assertions are structural (oracle clean, retention clean, every op ran);
timings are recorded, never asserted.  Set ``C7_ROWS`` / ``C7_OPS`` to
shrink the workload for CI smoke runs.
"""

import os

from repro.scenarios import (
    DifferentialOracle,
    InclusionGenerator,
    InclusionScenario,
    OpStream,
    VARIANT_NAMES,
    build_variants,
    format_failure,
)

from .conftest import print_table, record_bench

#: Scenario scale (= number of users; applications are 2x).
SCALE = int(os.environ.get("C7_ROWS", "1000"))
#: Mixed ops per run (the full-lifecycle epilogue rides on top).
OPS = int(os.environ.get("C7_OPS", "400"))
SEED = int(os.environ.get("C7_SEED", "7"))


def _quantile(samples, fraction):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def test_scenario_macro_workload_all_variants():
    scenario = InclusionScenario(SCALE)
    variants = build_variants(scenario)
    generator = InclusionGenerator(scenario, seed=SEED)
    try:
        loaded = {}
        for name, variant in variants.items():
            loaded = generator.load(variant.connection)
        stream = OpStream(scenario, seed=SEED, count=OPS)
        ops = stream.ops() + stream.epilogue(OPS)
        oracle = DifferentialOracle(variants,
                                    salaries=generator.sensitive_salaries())
        report = oracle.run(ops, fail_fast=False)
    finally:
        for variant in variants.values():
            variant.close()

    assert not report.mismatches, format_failure(SEED, report.mismatches)
    assert report.retention_violations == 0
    assert report.retention_checks > 0
    assert report.ops_run == len(ops)

    rows = []
    for name in VARIANT_NAMES:
        latencies = report.latencies[name]
        elapsed = sum(latencies)
        qps = round(len(latencies) / elapsed, 1) if elapsed else 0.0
        p50 = round(_quantile(latencies, 0.50) * 1000, 3)
        p99 = round(_quantile(latencies, 0.99) * 1000, 3)
        record_bench("c7", f"scenario_{name}",
                     rows_loaded=sum(loaded.values()), ops=len(latencies),
                     qps=qps, p50_ms=p50, p99_ms=p99,
                     oracle_mismatches=len(report.mismatches),
                     retention_checks=report.retention_checks,
                     retention_violations=report.retention_violations)
        rows.append([name, qps, p50, p99])
    print_table(
        f"C7: inclusion scenario @ scale {SCALE}, {len(ops)} ops "
        f"(seed {SEED}), oracle armed",
        ["variant", "qps", "p50 ms", "p99 ms"],
        rows,
    )
