"""Experiment F2 — Fig. 2: the attribute life cycle policy of the location domain.

Reproduces the paper's example LCP (0 min / 1 h / 1 day / 1 month delays) as a
population experiment: tuples inserted over time are tracked through the
automaton and the per-state population is reported at checkpoints, which is the
dynamic view of Fig. 2.  Also benchmarks the scheduler machinery that drives
those transitions.
"""

import pytest

from repro.core.clock import DAY, HOUR, MONTH
from repro.core.lcp import TupleLCP
from repro.core.scheduler import DegradationScheduler

from .conftest import print_table

POPULATION = 2_000
ARRIVAL_INTERVAL = 120.0      # one tuple every 2 minutes


def test_fig2_state_occupancy_over_time(benchmark, location_policy):
    """Population per LCP state at increasing checkpoints."""
    insert_times = [index * ARRIVAL_INTERVAL for index in range(POPULATION)]
    checkpoints = [
        ("last insert + 30 min", insert_times[-1] + HOUR / 2),
        ("last insert + 1 day", insert_times[-1] + DAY),
        ("last insert + 1 month", insert_times[-1] + MONTH),
        ("last insert + 5 months", insert_times[-1] + 5 * MONTH),
    ]
    state_names = location_policy.state_names()

    def compute_rows():
        rows = []
        for label, when in checkpoints:
            occupancy = [0] * location_policy.num_states
            for inserted in insert_times:
                occupancy[location_policy.state_at(when - inserted)] += 1
            rows.append([label] + occupancy)
        return rows

    rows = benchmark(compute_rows)
    print_table("F2: population per LCP state (Fig. 2 policy)",
                ["checkpoint"] + state_names, rows)
    # Shape: the population drains monotonically towards the final state.
    final_counts = [row[-1] for row in rows]
    assert final_counts == sorted(final_counts)
    assert rows[-1][-1] == POPULATION          # everything suppressed after 5 months
    assert rows[0][1] > 0                       # some tuples still accurate after 1 hour


def test_fig2_transition_offsets(benchmark, location_policy):
    """The entry offsets of each state match the paper's delays exactly."""
    entries = benchmark(location_policy.entry_times)
    rows = list(zip(location_policy.state_names(), entries))
    print_table("F2: state entry offsets", ["state", "entered after (s)"], rows)
    assert entries == [0.0, HOUR, HOUR + DAY, HOUR + DAY + MONTH,
                       HOUR + DAY + MONTH + 3 * MONTH]


def test_fig2_scheduler_throughput(benchmark, location_policy):
    """Benchmark: registering tuples and draining every timed step."""
    def run():
        scheduler = DegradationScheduler()
        tuple_lcp = TupleLCP({"location": location_policy})
        for index in range(500):
            scheduler.register(index, tuple_lcp, inserted_at=index * ARRIVAL_INTERVAL)
        applied = scheduler.run_due(500 * ARRIVAL_INTERVAL + 12 * MONTH,
                                    lambda step: True)
        return len(applied)

    steps = benchmark(run)
    assert steps == 500 * (location_policy.num_states - 1)


def test_fig2_state_lookup_cost(benchmark, location_policy):
    """Benchmark: evaluating state_at for a large population (pure automaton cost)."""
    offsets = [i * 97.0 for i in range(POPULATION)]

    def lookup_all():
        return [location_policy.state_at(offset) for offset in offsets]

    states = benchmark(lookup_all)
    assert len(states) == POPULATION
