"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark module reproduces one experiment of DESIGN.md §4 (F1–F3 for
the paper's figures, B1–B3 for its claimed benefits, C1–C3 for its technical
challenges, A1 for the future-work ablation).  Results are printed as small
tables — run with ``pytest benchmarks/ --benchmark-only -s`` to see them — and
the *shape* each experiment is expected to show (who wins, where crossovers
fall) is asserted so the harness fails loudly if the reproduction drifts.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Sequence

import pytest

from repro import AttributeLCP, InstantDB
from repro.core.domains import build_location_tree, build_salary_ranges
from repro.workloads import LocationTraceGenerator, person_table_sql, standard_purposes_sql

#: The paper's Fig. 2 policy delays.
LOCATION_TRANSITIONS = ["1 hour", "1 day", "1 month", "3 months"]
SALARY_TRANSITIONS = ["2 hours", "2 days", "2 months", "6 months"]

#: Machine-readable benchmark results live here, one ``BENCH_<tag>.json`` per
#: experiment family (c3, c4, fig1, ...), scenario → metrics.  Files are
#: merged on update so the perf trajectory accumulates across PRs; CI uploads
#: the directory as an artifact.
RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def record_bench(tag: str, scenario: str, **metrics) -> None:
    """Merge one scenario's metrics into ``benchmarks/results/BENCH_<tag>.json``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"BENCH_{tag}.json")
    data: Dict[str, Dict] = {}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
    data[scenario] = metrics
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _bench_tag(fullname: str) -> str:
    """``benchmarks/bench_c3_query_performance.py::test_x`` → ``c3``."""
    module = os.path.basename(fullname.split("::", 1)[0])
    stem = module[:-3] if module.endswith(".py") else module
    parts = stem.split("_")
    return parts[1] if len(parts) > 1 and parts[0] == "bench" else stem


@pytest.hookimpl(trylast=True)
def pytest_sessionfinish(session, exitstatus):
    """Persist every pytest-benchmark timing of this run as JSON results."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return
    for bench in getattr(bench_session, "benchmarks", []):
        stats = getattr(bench, "stats", None)
        mean = getattr(stats, "mean", None)
        if not mean:
            continue
        scenario = bench.fullname.split("::", 1)[-1]
        record_bench(
            _bench_tag(bench.fullname), scenario,
            ops_per_sec=round(1.0 / mean, 3),
            mean_seconds=round(mean, 9),
            rounds=getattr(stats, "rounds", None),
        )


def build_engine(strategy: str = "rewrite", with_indexes: bool = False,
                 with_purposes: bool = True) -> InstantDB:
    """InstantDB wired with the canonical PERSON table and Fig. 2 policies."""
    db = InstantDB(strategy=strategy)
    location = db.register_domain(build_location_tree())
    salary = db.register_domain(build_salary_ranges())
    db.register_policy(AttributeLCP(location, transitions=LOCATION_TRANSITIONS,
                                    name="location_lcp"))
    db.register_policy(AttributeLCP(salary, transitions=SALARY_TRANSITIONS,
                                    name="salary_lcp"))
    db.execute(person_table_sql(policy_name="location_lcp", salary_policy="salary_lcp"))
    if with_indexes:
        db.execute("CREATE INDEX idx_user ON person (user_id) USING hash")
        db.execute("CREATE INDEX idx_id ON person (id) USING btree")
        db.execute("CREATE INDEX idx_activity ON person (activity) USING bitmap")
        db.execute("CREATE INDEX idx_location ON person (location) USING gt")
    if with_purposes:
        for sql in standard_purposes_sql():
            db.execute(sql)
        db.execute("DECLARE PURPOSE exact SET ACCURACY LEVEL address FOR person.location")
    return db


def load_trace(db: InstantDB, count: int, interval: float = 60.0,
               num_users: int = 40, seed: int = 7) -> List[float]:
    """Insert ``count`` location events, advancing the simulated clock; return
    the insertion timestamps."""
    generator = LocationTraceGenerator(num_users=num_users, seed=seed)
    times = []
    for index, event in enumerate(generator.events(count, interval=interval), start=1):
        db.clock.advance_to(event.timestamp)
        row = event.as_row()
        row["id"] = index
        db.insert_row("person", row)
        times.append(event.timestamp)
    return times


def print_table(title: str, header: Sequence[str], rows: Sequence[Sequence]) -> None:
    """Render one experiment's series the way the paper would tabulate it."""
    widths = [max(len(str(header[i])), *(len(str(row[i])) for row in rows)) if rows
              else len(str(header[i])) for i in range(len(header))]
    print(f"\n== {title} ==")
    print("  " + "  ".join(str(column).ljust(widths[i]) for i, column in enumerate(header)))
    for row in rows:
        print("  " + "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))


@pytest.fixture(scope="module")
def location_tree():
    return build_location_tree()


@pytest.fixture(scope="module")
def salary_scheme():
    return build_salary_ranges()


@pytest.fixture
def location_policy(location_tree):
    return AttributeLCP(location_tree, transitions=LOCATION_TRANSITIONS,
                        name="location_lcp")


@pytest.fixture
def salary_policy(salary_scheme):
    return AttributeLCP(salary_scheme, transitions=SALARY_TRANSITIONS,
                        name="salary_lcp")
