"""Experiment F1 — Fig. 1: the generalization tree of the location domain.

Reproduces the paper's figure as data: per-level value counts of the location
GT (address → city → region → country → suppressed), verifies the defining
properties of the degradation function ``f_k`` (idempotence, monotonicity,
containment) over a sampled workload, and benchmarks the cost of applying
``f_k`` at each level.
"""

import pytest

from repro.core.values import SUPPRESSED
from repro.workloads import LocationTraceGenerator

from .conftest import print_table

SAMPLE = 10_000


@pytest.fixture(scope="module")
def sampled_addresses(location_tree):
    generator = LocationTraceGenerator(num_users=100, seed=3, tree=location_tree)
    return [generator.event_at(float(i)).address for i in range(SAMPLE)]


def test_fig1_level_structure(benchmark, location_tree):
    """The per-level cardinalities of the Fig. 1 tree (the figure's 'shape')."""
    def build_rows():
        rows = []
        for level in range(location_tree.num_levels):
            values = location_tree.values_at_level(level)
            rows.append((level, location_tree.level_name(level), len(values)))
        return rows

    rows = benchmark(build_rows)
    print_table("F1: location generalization tree (Fig. 1)",
                ["level", "name", "distinct values"], rows)
    counts = [row[2] for row in rows]
    # Strictly coarser as we go up, ending at the single suppressed root.
    assert counts == sorted(counts, reverse=True)
    assert counts[-1] == 1
    assert location_tree.level_name(0) == "address"
    assert location_tree.level_name(3) == "country"


def test_fig1_fk_properties_on_workload(benchmark, location_tree, sampled_addresses):
    """f_k over a 10k-address sample: containment and idempotence hold everywhere."""
    def degrade_sample():
        per_level = []
        for level in range(location_tree.num_levels):
            degraded = {location_tree.generalize(address, level)
                        for address in sampled_addresses}
            per_level.append((location_tree.level_name(level), len(degraded), degraded))
        return per_level

    per_level = benchmark(degrade_sample)
    distinct_after_fk = []
    for name, count, degraded in per_level:
        distinct_after_fk.append((name, count))
        level = location_tree.level_of_name(name)
        for value in list(degraded)[:50]:
            assert location_tree.generalize(value, level, from_level=level) == value
    print_table("F1: distinct values of the sample after applying f_k",
                ["f_k level", "distinct values"], distinct_after_fk)
    counts = [count for _name, count in distinct_after_fk]
    assert counts == sorted(counts, reverse=True)
    assert counts[-1] == 1          # everything collapses onto SUPPRESSED
    assert location_tree.generalize(sampled_addresses[0], 4) is SUPPRESSED


@pytest.mark.parametrize("level", [1, 2, 3, 4])
def test_fig1_fk_cost_per_level(benchmark, location_tree, sampled_addresses, level):
    """Micro-benchmark: applying f_k to 10k values at each target level."""
    sample = sampled_addresses

    def degrade_all():
        return [location_tree.generalize(address, level) for address in sample]

    result = benchmark(degrade_all)
    assert len(result) == SAMPLE
