"""Experiment C8 — serving under injected faults: throughput and retention lag.

The same seeded inclusion-platform stream as C7 replays against a victim
engine whose durability seams (WAL flush/rewrite, pager sync — plus both
wire directions for the remote variant) fail at a *fixed seeded rate*,
while the driver heals the way a deployment would: per-op retries,
reconnects, ``recover()`` out of read-only degraded mode.  An unfaulted
baseline run of the same stream gives the throughput denominator.

Reported per variant: healed QPS vs baseline QPS (the price of the fault
rate), retries / recoveries / reconnects, and the retention lag the faults
caused — degradation steps deferred by faulted waves, all of which must
drain to zero violations once the device heals.

Assertions are structural (every op ran, retention clean after the drain,
no deferred step left behind); timings are recorded, never asserted.  Set
``C8_ROWS`` / ``C8_OPS`` / ``C8_FAULT_RATE`` / ``C8_VARIANTS`` to shrink
or refocus the workload for CI smoke runs.
"""

import os
import time

from repro.engine.database import InstantDB
from repro.scenarios import InclusionScenario
from repro.scenarios.chaos import (
    ChaosRunner,
    ENGINE_FAULT_SITES,
    NETWORK_FAULT_SITES,
)
from repro.scenarios.retention import retention_report

from .conftest import print_table, record_bench

DAY = 86400.0
SCALE = int(os.environ.get("C8_ROWS", "200"))
OPS = int(os.environ.get("C8_OPS", "200"))
SEED = int(os.environ.get("C8_SEED", "11"))
FAULT_RATE = float(os.environ.get("C8_FAULT_RATE", "0.01"))
VARIANTS = tuple(
    os.environ.get("C8_VARIANTS", "compiled,columnar,remote").split(","))


def _run(variant, data_dir, fault_rate):
    """Replay the stream, healing throughout; returns (runner, elapsed)."""
    runner = ChaosRunner(variant, InclusionScenario(SCALE), seed=SEED,
                         fault_seed=SEED, data_dir=data_dir, ops=OPS)
    runner._build()
    if fault_rate > 0:
        sites = dict(ENGINE_FAULT_SITES)
        if variant == "remote":
            sites.update(NETWORK_FAULT_SITES)
        for site, kinds in sorted(sites.items()):
            if site == "clock.advance":
                continue  # a skipping clock distorts the lag measurement
            runner.plan.fail_with_probability(site, kinds[0], fault_rate)
    started = time.perf_counter()
    runner._replay_stream()
    elapsed = time.perf_counter() - started
    return runner, elapsed


def _drain_and_report(runner):
    """Heal the device, drain deferred waves, and check retention."""
    runner.plan.disarm()
    if runner.victim.engine_call(lambda db: db.read_only):
        runner.victim.engine_call(lambda db: db.recover(drain=True))
    deferred = runner.victim.engine_call(
        lambda db: db.daemon.stats.steps_deferred_by_fault)
    # every deferred wave retries within its backoff; a day covers them all
    for _ in range(2):
        runner.victim.advance(DAY)
    retention = runner.victim.engine_call(
        lambda db: retention_report(db, runner.salaries))
    return deferred, retention


def test_throughput_and_retention_lag_under_faults(tmp_path):
    rows = []
    for variant in VARIANTS:
        baseline, base_elapsed = _run(
            variant, str(tmp_path / f"{variant}-baseline"), fault_rate=0.0)
        try:
            assert baseline.report.retries == 0
            base_ops = baseline.report.ops_run
        finally:
            baseline.plan.disarm()
            baseline.victim.close()
            baseline.twin.close()

        faulted, fault_elapsed = _run(
            variant, str(tmp_path / f"{variant}-faulted"),
            fault_rate=FAULT_RATE)
        try:
            report = faulted.report
            assert report.ops_run == base_ops
            deferred, retention = _drain_and_report(faulted)
            assert retention == {"violations": 0, "leaks": 0}, retention
        finally:
            faulted.victim.close()
            faulted.twin.close()

        base_qps = round(base_ops / base_elapsed, 1) if base_elapsed else 0.0
        qps = round(report.ops_run / fault_elapsed, 1) if fault_elapsed else 0.0
        record_bench("c8", f"faults_{variant}",
                     scale=SCALE, ops=report.ops_run,
                     fault_rate=FAULT_RATE, faults_fired=len(faulted.plan.fired),
                     qps=qps, baseline_qps=base_qps,
                     retries=report.retries, recoveries=report.recoveries,
                     reconnects=report.reconnects,
                     steps_deferred_by_fault=deferred,
                     retention_violations=retention["violations"],
                     forensic_leaks=retention["leaks"])
        rows.append([variant, base_qps, qps, len(faulted.plan.fired),
                     report.retries, report.recoveries, deferred])
    print_table(
        f"C8: faulted serving @ scale {SCALE}, {OPS} ops, "
        f"fault rate {FAULT_RATE} (seed {SEED})",
        ["variant", "clean qps", "faulted qps", "faults", "retries",
         "recoveries", "deferred steps"],
        rows,
    )
