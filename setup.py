"""Setup shim.

The project is fully described in ``pyproject.toml``; this file exists so that
``pip install -e .`` also works on environments whose setuptools lacks the
PEP 660 editable-wheel backend (e.g. offline machines without the ``wheel``
package), via the legacy ``setup.py develop`` code path:

    pip install -e . --no-use-pep517 --no-build-isolation
"""

from setuptools import setup

setup()
